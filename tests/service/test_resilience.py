"""Tests for the resilience policies: retries, breakers, shutdown guard."""

import signal
import threading

import pytest

from repro.service.resilience import (
    BREAKER_STATE_VALUES,
    CircuitBreaker,
    RetryPolicy,
    shutdown_guard,
)


class FakeClock:
    """A hand-cranked monotonic clock whose sleeps advance it."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds):
        self.now += seconds


def make_policy(**overrides):
    clock = FakeClock()
    defaults = dict(
        max_retries=3,
        base_delay=1.0,
        multiplier=2.0,
        max_delay=60.0,
        jitter=0.5,
        seed=42,
        clock=clock,
        sleep=clock.sleep,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults), clock


class TestRetryPolicy:
    def test_backoff_sleeps_are_exactly_the_seeded_schedule(self):
        policy, clock = make_policy()
        session = policy.start()
        for attempt in (1, 2, 3):
            assert session.backoff(attempt, token="job-a")
        assert clock.sleeps == [policy.delay_for(a, "job-a") for a in (1, 2, 3)]
        # And the schedule is reproducible: a fresh identical policy (its
        # own clock, no shared state) sleeps the same seconds.
        other, other_clock = make_policy()
        other_session = other.start()
        for attempt in (1, 2, 3):
            other_session.backoff(attempt, token="job-a")
        assert other_clock.sleeps == clock.sleeps

    def test_jitter_is_seed_and_token_deterministic(self):
        policy, _ = make_policy()
        assert policy.delay_for(2, "a") == policy.delay_for(2, "a")
        assert policy.delay_for(2, "a") != policy.delay_for(2, "b")
        different_seed, _ = make_policy(seed=43)
        assert policy.delay_for(2, "a") != different_seed.delay_for(2, "a")

    def test_jitter_stays_within_the_configured_band(self):
        policy, _ = make_policy(jitter=0.5)
        for attempt in range(1, 5):
            base = min(policy.max_delay, policy.base_delay * policy.multiplier ** (attempt - 1))
            for token in range(20):
                delay = policy.delay_for(attempt, token)
                assert 0.5 * base <= delay <= 1.5 * base

    def test_zero_jitter_is_pure_exponential_with_cap(self):
        policy, _ = make_policy(jitter=0.0, max_delay=3.0)
        assert list(policy.schedule("t")) == [1.0, 2.0, 3.0]

    def test_deadline_budget_cuts_retries_short(self):
        # 10s budget: the third backoff (4s expected, >= 10 - spent) is denied.
        policy, clock = make_policy(jitter=0.0, deadline=10.0, max_retries=5)
        session = policy.start()
        assert session.backoff(1, token="j")  # sleeps 1s
        assert session.backoff(2, token="j")  # sleeps 2s
        clock.advance(5.0)  # the attempts themselves took time
        assert not session.backoff(3, token="j")  # 4s backoff > 2s remaining
        assert session.retries_granted == 2
        assert session.retries_denied == 1
        assert clock.sleeps == [1.0, 2.0]

    def test_exhausted_deadline_denies_via_should_retry(self):
        policy, clock = make_policy(deadline=5.0)
        session = policy.start()
        assert session.should_retry(1)
        clock.advance(6.0)
        assert not session.should_retry(1)
        assert session.retries_denied == 1

    def test_attempt_count_bounds_retries(self):
        policy, _ = make_policy(max_retries=2)
        session = policy.start()
        assert session.should_retry(2)
        assert not session.should_retry(3)

    def test_with_retries_keeps_everything_else(self):
        policy, _ = make_policy()
        bumped = policy.with_retries(7)
        assert bumped.max_retries == 7
        assert bumped.seed == policy.seed
        assert bumped.base_delay == policy.base_delay

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        defaults = dict(
            name="test", window=8, failure_threshold=0.5, min_calls=4,
            cooldown=30.0, clock=clock,
        )
        defaults.update(overrides)
        return CircuitBreaker(**defaults), clock

    def test_trips_at_failure_rate_over_min_calls(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # only 2 samples < min_calls
        breaker.record_success()
        breaker.record_failure()  # 3 failures / 4 samples >= 0.5
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(29.0)
        assert not breaker.allow()  # still cooling down
        clock.advance(2.0)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # probe in flight: everyone else refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_probe_success_forgets_the_failure_window(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allow()
        breaker.record_success()
        # One fresh failure must not re-trip off the stale window.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_state_gauge_is_published(self, clean_metrics):
        breaker, _ = self.make(name="gauge-test", min_calls=2, window=4)
        snapshot = clean_metrics.snapshot()
        assert snapshot["repro_breaker_state"]["breaker=gauge-test"] == (
            BREAKER_STATE_VALUES["closed"]
        )
        breaker.record_failure()
        breaker.record_failure()
        snapshot = clean_metrics.snapshot()
        assert snapshot["repro_breaker_state"]["breaker=gauge-test"] == (
            BREAKER_STATE_VALUES["open"]
        )
        assert snapshot["repro_breaker_trips_total"]["breaker=gauge-test"] == 1

    def test_reset_closes_and_forgets(self):
        breaker, _ = self.make()
        for _ in range(4):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.failure_rate() == 0.0


class TestShutdownGuard:
    def test_first_signal_sets_the_token_second_raises(self):
        token = threading.Event()
        with shutdown_guard(token):
            signal.raise_signal(signal.SIGINT)
            assert token.is_set()  # drained, not raised
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)

    def test_previous_handlers_are_restored(self):
        token = threading.Event()
        before = signal.getsignal(signal.SIGINT)
        with shutdown_guard(token):
            assert signal.getsignal(signal.SIGINT) != before
        assert signal.getsignal(signal.SIGINT) == before

    def test_sigterm_also_drains(self):
        token = threading.Event()
        before = signal.getsignal(signal.SIGTERM)
        with shutdown_guard(token):
            signal.raise_signal(signal.SIGTERM)
            assert token.is_set()
        assert signal.getsignal(signal.SIGTERM) == before
