"""Timeout, retry, ordering, and fallback tests for the execution backends.

The runners below are module-level so the fork-based process pool can
ship them to workers; cross-attempt and cross-process state goes through
marker files, never module globals.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.service.executor import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    resolve_executor,
    run_payload_with_timeout,
)

needs_alarm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="SIGALRM unavailable on this platform"
)


def echo_runner(payload):
    time.sleep(payload.get("sleep", 0.0))
    return {"index": payload["index"], "status": "ok", "value": payload["value"]}


def sleepy_first_attempt_runner(payload):
    """Hangs on the first attempt (per marker file), succeeds afterwards."""
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("attempt-1", encoding="utf-8")
        time.sleep(30)
    return {"index": payload["index"], "status": "ok", "value": payload["value"]}


def crash_first_attempt_runner(payload):
    """Kills its process on the first attempt, succeeds afterwards."""
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("attempt-1", encoding="utf-8")
        os._exit(1)
    return {"index": payload["index"], "status": "ok", "value": payload["value"]}


def always_crash_runner(payload):
    os._exit(1)


def _payloads(count, **extra):
    return [dict(index=i, value=i * 10, **extra) for i in range(count)]


class TestRunPayloadWithTimeout:
    def test_no_timeout_runs_plain(self):
        raw = run_payload_with_timeout({"index": 0, "value": 7}, None, echo_runner)
        assert raw["status"] == "ok" and raw["value"] == 7

    @needs_alarm
    def test_timeout_produces_flagged_error(self):
        started = time.perf_counter()
        raw = run_payload_with_timeout(
            {"index": 3, "value": 1, "sleep": 30}, 0.2, echo_runner
        )
        assert time.perf_counter() - started < 5
        assert raw["status"] == "error" and raw["timeout"] is True
        assert "timed out after 0.2s" in raw["error"]
        assert raw["index"] == 3

    @needs_alarm
    def test_fast_job_unaffected_and_alarm_cleared(self):
        raw = run_payload_with_timeout({"index": 0, "value": 5}, 5.0, echo_runner)
        assert raw["status"] == "ok"
        # The itimer must be disarmed afterwards.
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestSerialExecutor:
    def test_ordered_results_and_attempts(self):
        raws = SerialExecutor().run(_payloads(4), runner=echo_runner)
        assert [raw["value"] for raw in raws] == [0, 10, 20, 30]
        assert all(raw["attempts"] == 1 for raw in raws)

    def test_progress_called_per_payload(self):
        seen = []
        SerialExecutor().run(
            _payloads(3), progress=lambda pos, raw: seen.append(pos), runner=echo_runner
        )
        assert seen == [0, 1, 2]

    @needs_alarm
    def test_timeout_without_retries(self):
        raws = SerialExecutor(timeout=0.2).run(
            [{"index": 0, "value": 1, "sleep": 30}], runner=echo_runner
        )
        assert raws[0]["status"] == "error"
        assert raws[0]["timeout"] is True
        assert raws[0]["attempts"] == 1

    @needs_alarm
    def test_timeout_retry_rescues_flaky_job(self, tmp_path):
        payload = {"index": 0, "value": 9, "marker": str(tmp_path / "m")}
        raws = SerialExecutor(timeout=0.5, retries=1).run(
            [payload], runner=sleepy_first_attempt_runner
        )
        assert raws[0]["status"] == "ok" and raws[0]["value"] == 9
        assert raws[0]["attempts"] == 2

    @needs_alarm
    def test_retry_budget_is_bounded(self):
        raws = SerialExecutor(timeout=0.2, retries=2).run(
            [{"index": 0, "value": 1, "sleep": 30}], runner=echo_runner
        )
        assert raws[0]["status"] == "error"
        assert raws[0]["attempts"] == 3  # 1 initial + 2 retries


class TestProcessExecutor:
    def test_ordered_results_across_workers(self):
        # Later payloads finish first (descending sleeps reversed), yet
        # results come back aligned with the input order.
        payloads = [
            {"index": i, "value": i * 10, "sleep": 0.05 * (3 - i)} for i in range(4)
        ]
        raws = ProcessExecutor(max_workers=2, chunk_size=1, warmup=False).run(
            payloads, runner=echo_runner
        )
        assert [raw["value"] for raw in raws] == [0, 10, 20, 30]

    def test_progress_reports_every_position(self):
        seen = set()
        ProcessExecutor(max_workers=2, chunk_size=2, warmup=False).run(
            _payloads(5),
            progress=lambda pos, raw: seen.add(pos),
            runner=echo_runner,
        )
        assert seen == {0, 1, 2, 3, 4}

    def test_single_payload_runs_inline(self):
        raws = ProcessExecutor(max_workers=4, warmup=False).run(
            _payloads(1), runner=echo_runner
        )
        assert raws[0]["status"] == "ok" and raws[0]["attempts"] == 1

    @needs_alarm
    def test_per_job_timeout_does_not_poison_batch(self):
        payloads = _payloads(3)
        payloads[1]["sleep"] = 30
        started = time.perf_counter()
        raws = ProcessExecutor(
            max_workers=2, timeout=0.5, retries=0, chunk_size=1, warmup=False
        ).run(payloads, runner=echo_runner)
        assert time.perf_counter() - started < 20
        assert [raw["status"] for raw in raws] == ["ok", "error", "ok"]
        assert raws[1]["timeout"] is True

    def test_crashed_worker_job_is_retried(self, tmp_path):
        payloads = _payloads(2)
        payloads[1]["marker"] = str(tmp_path / "crash-marker")
        payloads[0]["marker"] = str(tmp_path / "never-created") + "-exists"
        Path(payloads[0]["marker"]).write_text("x", encoding="utf-8")
        raws = ProcessExecutor(
            max_workers=2, retries=1, chunk_size=1, warmup=False
        ).run(payloads, runner=crash_first_attempt_runner)
        assert [raw["status"] for raw in raws] == ["ok", "ok"]
        assert raws[1]["attempts"] >= 2

    def test_crash_without_retries_is_captured_error(self):
        raws = ProcessExecutor(
            max_workers=2, retries=0, chunk_size=1, warmup=False
        ).run(_payloads(2), runner=always_crash_runner)
        assert all(raw["status"] == "error" for raw in raws)
        assert all("attempts" in raw for raw in raws)

    def test_empty_payload_list(self):
        assert ProcessExecutor(max_workers=2, warmup=False).run([]) == []

    def test_broken_pool_at_dispatch_falls_back_inline(self):
        """A pool that cannot accept work must not lose jobs: every payload
        still runs (inline) and comes back ok, never 'lost track'."""
        backend = ProcessExecutor(max_workers=2, chunk_size=1, warmup=False)
        pool = backend._open_pool(2)
        pool.shutdown(wait=True)  # submit() now raises RuntimeError
        original_open = backend._open_pool
        backend._open_pool = lambda workers: pool
        try:
            raws = backend.run(_payloads(4), runner=echo_runner)
        finally:
            backend._open_pool = original_open
        assert [raw["status"] for raw in raws] == ["ok"] * 4
        assert [raw["value"] for raw in raws] == [0, 10, 20, 30]


class TestResolveExecutor:
    def test_names(self):
        assert set(EXECUTORS) == {"serial", "process", "auto"}
        assert isinstance(
            resolve_executor("serial", num_jobs=8, max_workers=4), SerialExecutor
        )
        assert isinstance(
            resolve_executor("process", num_jobs=8, max_workers=4), ProcessExecutor
        )

    def test_auto_picks_process_only_with_parallelism(self):
        assert isinstance(
            resolve_executor("auto", num_jobs=8, max_workers=4), ProcessExecutor
        )
        assert isinstance(
            resolve_executor("auto", num_jobs=8, max_workers=1), SerialExecutor
        )
        assert isinstance(
            resolve_executor("auto", num_jobs=1, max_workers=4), SerialExecutor
        )
        assert isinstance(resolve_executor(None, num_jobs=0), SerialExecutor)

    def test_settings_are_threaded_through(self):
        backend = resolve_executor(
            "process", num_jobs=8, max_workers=3, timeout=1.5, retries=2
        )
        assert backend.max_workers == 3
        assert backend.timeout == 1.5
        assert backend.retries == 2

    def test_executor_objects_pass_through(self):
        backend = SerialExecutor(timeout=9)
        assert resolve_executor(backend) is backend

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("threads")
        with pytest.raises(TypeError, match="no run"):
            resolve_executor(object())

    def test_default_worker_count_bounds(self):
        assert default_worker_count(0) == 1
        assert 1 <= default_worker_count(100) <= (os.cpu_count() or 1)


def pid_runner(payload):
    return {"index": payload["index"], "status": "ok", "pid": os.getpid()}


class TestKeepAlivePool:
    """The persistent warm pool behind ``keep_alive=True``."""

    def test_workers_survive_across_runs(self, clean_metrics):
        with ProcessExecutor(max_workers=2, warmup=False, keep_alive=True) as executor:
            first = executor.run(_payloads(4), runner=pid_runner)
            assert executor.pool_workers == 2
            second = executor.run(_payloads(4), runner=pid_runner)
            first_pids = {raw["pid"] for raw in first}
            second_pids = {raw["pid"] for raw in second}
            # Same pool, same processes: across both runs only the two
            # original workers ever appear (chunk scheduling may hand a
            # whole run to one of them, so equality is too strong).
            assert len(first_pids | second_pids) <= 2
            assert first_pids and second_pids
            forks = clean_metrics.counter("repro_executor_pool_forks_total")
            reuses = clean_metrics.counter("repro_executor_pool_reuses_total")
            assert forks.as_value() == 1
            assert reuses.as_value() == 1
            assert clean_metrics.gauge("repro_executor_pool_workers").as_value() == 2
        # Context exit closes the pool and zeroes the gauge.
        assert executor.pool_workers == 0
        assert clean_metrics.gauge("repro_executor_pool_workers").as_value() == 0

    def test_close_then_run_forks_a_fresh_pool(self, clean_metrics):
        executor = ProcessExecutor(max_workers=2, warmup=False, keep_alive=True)
        try:
            executor.run(_payloads(3), runner=pid_runner)
            executor.close()
            assert executor.pool_workers == 0
            executor.run(_payloads(3), runner=pid_runner)
            assert executor.pool_workers == 2
            forks = clean_metrics.counter("repro_executor_pool_forks_total")
            assert forks.as_value() == 2
        finally:
            executor.close()

    def test_without_keep_alive_every_run_forks(self, clean_metrics):
        executor = ProcessExecutor(max_workers=2, warmup=False)
        executor.run(_payloads(3), runner=pid_runner)
        executor.run(_payloads(3), runner=pid_runner)
        assert executor.pool_workers == 0
        forks = clean_metrics.counter("repro_executor_pool_forks_total")
        reuses = clean_metrics.counter("repro_executor_pool_reuses_total")
        assert forks.as_value() == 2
        assert reuses.as_value() == 0
