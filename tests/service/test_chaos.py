"""Tests for the ``phoenix chaos`` survival harness."""

from repro.service import faultlab
from repro.service.chaos import format_chaos_report, run_chaos
from repro.service.resilience import RetryPolicy

FAST_RETRIES = RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0,
                           jitter=0.0, retry_errors=True)


class TestRunChaos:
    def test_ci_smoke_scenario_survives_and_accounts_for_every_job(self):
        report = run_chaos(
            faultlab.BUILTIN_SCENARIOS["ci-smoke"], limit=3,
            retry_policy=FAST_RETRIES,
        )
        assert report["submitted"] == 3
        assert report["completed"] + report["errored"] == 3
        assert report["accounted"]
        assert report["crashed"] is None
        assert report["byte_identical"]
        assert report["survived"]
        assert len(report["per_job"]) == 3

    def test_chaos_results_match_fault_free_bytes(self):
        # High-probability cache corruption: survivors must still be
        # byte-identical to the clean reference run.
        scenario = faultlab.BUILTIN_SCENARIOS["cache-corruption"].with_seed(3)
        report = run_chaos(scenario, limit=2, retry_policy=FAST_RETRIES)
        assert report["accounted"]
        assert report["byte_identical"]
        assert report["mismatches"] == []

    def test_faults_actually_fire_and_are_reported(self):
        scenario = faultlab.Scenario(
            name="always-corrupt", seed=1,
            faults=({"point": "cache.get", "fault": "corrupt", "p": 1.0},),
        )
        report = run_chaos(scenario, limit=2, verify=False,
                           retry_policy=FAST_RETRIES)
        assert report["faults_fired"] > 0
        assert report["metrics"]["faults_injected"] > 0
        assert report["byte_identical"] is None  # verify skipped
        assert report["accounted"]

    def test_report_formats_as_a_survival_table(self):
        report = run_chaos(
            faultlab.BUILTIN_SCENARIOS["ci-smoke"], limit=2,
            retry_policy=FAST_RETRIES,
        )
        text = format_chaos_report(report)
        assert "survived" in text
        assert "accounted" in text
        for row in report["per_job"]:
            assert row["name"] in text
