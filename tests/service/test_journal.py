"""Tests for the crash-safe batch journal (WAL) and resume semantics."""

import json

import pytest

from repro.service import faultlab
from repro.service.cache import MemoryCacheStore
from repro.service.journal import BatchJournal, load_journal, open_journal
from repro.service.service import CompilationJob, CompilationService


class TestBatchJournal:
    def test_round_trip_and_header(self, tmp_path):
        path = tmp_path / "run.wal"
        with BatchJournal(path) as journal:
            assert journal.record({"key": "k1", "status": "ok", "result": {"x": 1}})
            assert journal.record({"key": "k2", "status": "error", "error": "boom"})
        entries, stats = load_journal(path)
        assert set(entries) == {"k1", "k2"}
        assert entries["k1"]["result"] == {"x": 1}
        assert entries["k2"]["status"] == "error"
        assert stats["header"]["format"] == "phoenix-batch-journal-1"
        assert stats["malformed"] == 0

    def test_last_record_per_key_wins(self, tmp_path):
        path = tmp_path / "run.wal"
        with BatchJournal(path) as journal:
            journal.record({"key": "k", "status": "error", "error": "first try"})
            journal.record({"key": "k", "status": "ok", "result": {"x": 2}})
        entries, _ = load_journal(path)
        assert entries["k"]["status"] == "ok"

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "run.wal"
        with BatchJournal(path) as journal:
            journal.record({"key": "done", "status": "ok", "result": {}})
        # Simulate a crash mid-append: a partial JSON line at EOF.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "half-written", "stat')
        entries, stats = load_journal(path)
        assert set(entries) == {"done"}  # the torn line is just "not terminal"
        assert stats["malformed"] == 1

    def test_non_terminal_and_keyless_records_are_skipped(self, tmp_path):
        path = tmp_path / "run.wal"
        lines = [
            {"format": "phoenix-batch-journal-1", "version": 1},
            {"key": "k1", "status": "running"},
            {"status": "ok"},
            {"key": "k2", "status": "ok"},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
        )
        entries, stats = load_journal(path)
        assert set(entries) == {"k2"}
        assert stats["malformed"] == 2

    def test_append_degrades_instead_of_raising(self, tmp_path, clean_metrics):
        journal = BatchJournal(tmp_path / "run.wal")
        assert not journal.record({"status": "ok"})  # no key
        faultlab.inject("journal.record", "disk-full", p=1.0)
        assert not journal.record({"key": "k", "status": "ok"})
        journal.close()
        assert journal.append_errors == 2
        snapshot = clean_metrics.snapshot()
        assert snapshot["repro_journal_errors_total"][""] == 2
        entries, _ = load_journal(tmp_path / "run.wal")
        assert entries == {}

    def test_reopening_appends_instead_of_truncating(self, tmp_path):
        path = tmp_path / "run.wal"
        with BatchJournal(path) as journal:
            journal.record({"key": "k1", "status": "ok"})
        with BatchJournal(path) as journal:
            journal.record({"key": "k2", "status": "ok"})
        entries, stats = load_journal(path)
        assert set(entries) == {"k1", "k2"}
        assert stats["header"] is not None  # written once, not twice

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            BatchJournal(tmp_path / "run.wal", fsync="sometimes")
        for policy in ("line", "close", "off"):
            BatchJournal(tmp_path / f"{policy}.wal", fsync=policy).close()

    def test_open_journal_passthrough_and_ownership(self, tmp_path):
        assert open_journal(None) == (None, False)
        owned, owns = open_journal(tmp_path / "a.wal")
        assert owns and isinstance(owned, BatchJournal)
        owned.close()
        reused, owns = open_journal(owned)
        assert reused is owned and not owns

    def test_missing_journal_loads_empty(self, tmp_path):
        entries, stats = load_journal(tmp_path / "never-written.wal")
        assert entries == {} and stats["lines"] == 0


class TestServiceResume:
    def make_jobs(self, tiny_program, small_program):
        return [
            CompilationJob("tiny", tiny_program),
            CompilationJob("small", small_program),
        ]

    def test_resume_replays_terminal_jobs(self, tmp_path, tiny_program, small_program):
        path = tmp_path / "batch.wal"
        jobs = self.make_jobs(tiny_program, small_program)
        first = CompilationService().compile_many(jobs, workers=1, journal=str(path))
        assert all(job_result.ok for job_result in first)

        # A fresh service (cold cache) resumes from the journal alone.
        attempts = []
        service = CompilationService(cache=MemoryCacheStore())
        resumed = service.compile_many(
            jobs, workers=1, journal=str(path), resume=True,
            progress=lambda event: attempts.append(event.outcome),
        )
        assert [job_result.resumed for job_result in resumed] == [True, True]
        assert attempts == ["resume", "resume"]
        for before, after in zip(first, resumed):
            assert after.ok
            assert after.result.metrics.as_dict() == before.result.metrics.as_dict()

    def test_resume_recompiles_only_missing_jobs(
        self, tmp_path, tiny_program, small_program
    ):
        path = tmp_path / "batch.wal"
        jobs = self.make_jobs(tiny_program, small_program)
        service = CompilationService()
        service.compile_many(jobs[:1], workers=1, journal=str(path))

        outcomes = []
        fresh = CompilationService(cache=MemoryCacheStore())
        results = fresh.compile_many(
            jobs, workers=1, journal=str(path), resume=True,
            progress=lambda event: outcomes.append((event.name, event.outcome)),
        )
        assert results[0].resumed and not results[1].resumed
        assert ("tiny", "resume") in outcomes
        assert ("small", "miss") in outcomes
        # The second run journalled the recompiled job: resuming again is
        # now a full replay.
        entries, _ = load_journal(path)
        assert len(entries) == 2

    def test_without_resume_flag_journal_only_records(
        self, tmp_path, tiny_program, small_program
    ):
        path = tmp_path / "batch.wal"
        jobs = self.make_jobs(tiny_program, small_program)
        CompilationService().compile_many(jobs, workers=1, journal=str(path))
        again = CompilationService(cache=MemoryCacheStore()).compile_many(
            jobs, workers=1, journal=str(path)
        )
        assert all(not job_result.resumed for job_result in again)

    def test_resumed_jobs_reseed_the_cache_for_duplicates(
        self, tmp_path, tiny_program
    ):
        path = tmp_path / "batch.wal"
        CompilationService().compile_many(
            [CompilationJob("one", tiny_program)], workers=1, journal=str(path)
        )
        twins = [
            CompilationJob("one", tiny_program),
            CompilationJob("one-again", tiny_program),
        ]
        results = CompilationService(cache=MemoryCacheStore()).compile_many(
            twins, workers=1, journal=str(path), resume=True
        )
        assert results[0].resumed
        assert results[1].cached  # served by the journal-seeded cache
