"""Tests for the batch compilation service."""

import pytest

from repro.core.compiler import PhoenixCompiler
from repro.experiments.harness import default_compilers, run_suite
from repro.paulis.pauli import PauliTerm
from repro.service.cache import MemoryCacheStore, open_cache
from repro.service.registry import (
    CompilerOptions,
    compiler_names,
    resolve_topology,
    topology_to_spec,
)
from repro.service.service import CompilationJob, CompilationService


def gate_tuples(circuit):
    return [(g.name, g.qubits, g.params) for g in circuit]


class TestRegistry:
    def test_compiler_names(self):
        assert set(compiler_names()) >= {"phoenix", "naive", "paulihedral", "tetris", "tket"}

    def test_unknown_compiler_rejected(self):
        with pytest.raises(ValueError, match="unknown compiler"):
            CompilerOptions(compiler="qiskit")

    def test_topology_specs(self):
        assert resolve_topology(None) is None
        assert resolve_topology("all-to-all") is None
        assert resolve_topology("line-5").num_qubits == 5
        assert resolve_topology("ring-6").num_qubits == 6
        assert resolve_topology("grid-2x3").num_qubits == 6
        assert resolve_topology("manhattan").fingerprint() == resolve_topology(
            "heavy-hex"
        ).fingerprint()
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("torus-4")

    def test_topology_round_trip_through_spec(self):
        from repro.hardware.topology import Topology

        for topo in (Topology.line(4), Topology.grid(2, 3), Topology.ibm_manhattan()):
            spec = topology_to_spec(topo)
            assert resolve_topology(spec).fingerprint() == topo.fingerprint()
        assert topology_to_spec(None) is None
        assert topology_to_spec(Topology.all_to_all(4)) is None
        with pytest.raises(ValueError):
            topology_to_spec(Topology(3, [(0, 1)], name="weird"))

    def test_build_matches_direct_construction(self, tiny_program):
        built = CompilerOptions(optimization_level=3).build()
        direct = PhoenixCompiler(optimization_level=3)
        assert gate_tuples(built.compile(tiny_program).circuit) == gate_tuples(
            direct.compile(tiny_program).circuit
        )


class TestCompilationService:
    def test_results_in_submission_order(self, tiny_program, qaoa_line_program):
        service = CompilationService()
        jobs = [
            CompilationJob("qaoa", qaoa_line_program),
            CompilationJob("tiny", tiny_program),
            CompilationJob("tiny-naive", tiny_program, CompilerOptions(compiler="naive")),
        ]
        results = service.compile_many(jobs, workers=1)
        assert [r.name for r in results] == ["qaoa", "tiny", "tiny-naive"]
        assert all(r.ok and not r.cached for r in results)

    def test_cache_hits_on_rerun_and_matches_direct(self, tiny_program):
        service = CompilationService()
        cold = service.compile(tiny_program)
        warm = service.compile(tiny_program)
        assert not cold.cached and warm.cached
        assert warm.result.metrics == cold.result.metrics
        assert gate_tuples(warm.result.circuit) == gate_tuples(cold.result.circuit)
        direct = PhoenixCompiler().compile(tiny_program)
        assert gate_tuples(cold.result.circuit) == gate_tuples(direct.circuit)

    def test_reordered_program_hits_same_entry(self, tiny_program):
        service = CompilationService()
        service.compile(tiny_program)
        rerun = service.compile(list(reversed(tiny_program)), name="reordered")
        assert rerun.cached

    def test_order_sensitive_compiler_misses_on_reorder(self, tiny_program):
        # The naive baseline implements the given Trotter order verbatim,
        # so a reordered program must NOT be served the cached circuit.
        service = CompilationService()
        naive = CompilerOptions(compiler="naive")
        first = service.compile(tiny_program, naive)
        rerun = service.compile(list(reversed(tiny_program)), naive, name="reordered")
        assert not rerun.cached
        assert [t.to_label() for t in rerun.result.implemented_terms] == [
            t.to_label() for t in reversed(tiny_program)
        ]
        again = service.compile(tiny_program, naive)
        assert again.cached and first.ok

    def test_unfingerprintable_job_fails_alone(self, tiny_program):
        service = CompilationService()
        jobs = [
            CompilationJob("empty", []),
            CompilationJob("good", tiny_program),
        ]
        results = service.compile_many(jobs, workers=1)
        assert [r.status for r in results] == ["error", "ok"]
        assert "cannot fingerprint an empty program" in results[0].error

    def test_within_batch_deduplication(self, tiny_program):
        service = CompilationService()
        jobs = [
            CompilationJob("first", tiny_program),
            CompilationJob("dup", list(reversed(tiny_program))),
        ]
        results = service.compile_many(jobs, workers=1)
        assert not results[0].cached and not results[0].deduplicated
        assert results[1].deduplicated and not results[1].cached
        assert service.cache.stats.puts == 1

    def test_error_capture_does_not_poison_batch(self, tiny_program):
        # 5-qubit program on a 4-qubit line topology: routing must fail.
        bad_program = [PauliTerm.from_label("XXXXX", 0.1)]
        service = CompilationService()
        jobs = [
            CompilationJob("good", tiny_program),
            CompilationJob("bad", bad_program, CompilerOptions(topology="line-4")),
            CompilationJob("also-good", tiny_program, CompilerOptions(seed=1)),
        ]
        results = service.compile_many(jobs, workers=1)
        assert [r.status for r in results] == ["ok", "error", "ok"]
        assert "Traceback" in results[1].error
        assert results[1].result is None
        # Errors are not cached: a retry re-executes.
        retry = service.compile_many([jobs[1]], workers=1)
        assert retry[0].status == "error" and not retry[0].cached

    def test_parallel_workers_match_serial(self, tiny_program, qaoa_line_program):
        jobs = [
            CompilationJob("tiny", tiny_program),
            CompilationJob("qaoa", qaoa_line_program),
            CompilationJob("tiny-o3", tiny_program, CompilerOptions(optimization_level=3)),
            CompilationJob("qaoa-naive", qaoa_line_program, CompilerOptions(compiler="naive")),
        ]
        serial = CompilationService().compile_many(jobs, workers=1)
        parallel = CompilationService().compile_many(jobs, workers=2)
        assert [r.name for r in parallel] == [r.name for r in serial]
        for serial_result, parallel_result in zip(serial, parallel):
            assert parallel_result.ok
            assert parallel_result.result.metrics == serial_result.result.metrics
            assert gate_tuples(parallel_result.result.circuit) == gate_tuples(
                serial_result.result.circuit
            )

    def test_disk_cache_shared_across_services(self, tiny_program, tmp_path):
        first = CompilationService(cache=open_cache(tmp_path / "cache"))
        first.compile(tiny_program)
        second = CompilationService(cache=open_cache(tmp_path / "cache"))
        assert second.compile(tiny_program).cached

    def test_compiler_cache_hook_uses_same_keys(self, tiny_program):
        # PhoenixCompiler(cache=...) and the service address the same store.
        store = MemoryCacheStore()
        PhoenixCompiler(cache=store).compile(tiny_program)
        service = CompilationService(cache=store)
        assert service.compile(tiny_program).cached


class TestHarnessThroughService:
    def test_suite_results_match_inline(self, tiny_program):
        compilers = default_compilers()
        inline = run_suite({"tiny": tiny_program}, compilers)
        service = CompilationService()
        routed = run_suite({"tiny": tiny_program}, compilers, service=service, workers=1)
        for name in inline["tiny"]:
            assert routed["tiny"][name].metrics == inline["tiny"][name].metrics

    def test_suite_rerun_is_all_cache_hits(self, tiny_program, qaoa_line_program):
        service = CompilationService()
        programs = {"tiny": tiny_program, "qaoa": qaoa_line_program}
        run_suite(programs, default_compilers(), service=service, workers=1)
        puts_before = service.cache.stats.puts
        run_suite(programs, default_compilers(), service=service, workers=1)
        assert service.cache.stats.puts == puts_before  # nothing recompiled

    def test_custom_factory_falls_back_inline(self, tiny_program):
        from repro.experiments.harness import CompilerSpec

        def custom_factory(isa, topology, optimization_level):
            return PhoenixCompiler(
                isa=isa, topology=topology, optimization_level=optimization_level,
                lookahead=3,
            )

        service = CompilationService()
        suite = run_suite(
            {"tiny": tiny_program},
            [CompilerSpec("custom", custom_factory)],
            service=service,
            workers=1,
        )
        assert suite["tiny"]["custom"].metrics.cx_count > 0
        assert service.cache.stats.puts == 0  # never went through the service


class TestBatchTimeoutOverride:
    def _capture_resolve(self, monkeypatch):
        import repro.service.service as service_module

        captured = {}
        real = service_module.resolve_executor

        def spy(spec, **kwargs):
            captured.update(kwargs)
            return real("serial", **kwargs)

        monkeypatch.setattr(service_module, "resolve_executor", spy)
        return captured

    def test_omitted_timeout_inherits_service_default(
        self, tiny_program, monkeypatch
    ):
        captured = self._capture_resolve(monkeypatch)
        service = CompilationService(timeout=120.0)
        service.compile_many([CompilationJob("a", tiny_program)])
        assert captured["timeout"] == 120.0

    def test_explicit_none_means_unlimited(self, tiny_program, monkeypatch):
        captured = self._capture_resolve(monkeypatch)
        service = CompilationService(timeout=120.0)
        service.compile_many([CompilationJob("a", tiny_program)], timeout=None)
        assert captured["timeout"] is None

    def test_explicit_value_overrides(self, tiny_program, monkeypatch):
        captured = self._capture_resolve(monkeypatch)
        service = CompilationService(timeout=120.0)
        service.compile_many([CompilationJob("a", tiny_program)], timeout=7.5)
        assert captured["timeout"] == 7.5


class TestKeepAliveService:
    """The service-owned persistent warm pool (the resident server's mode)."""

    def test_persistent_executor_reused_across_batches(
        self, tiny_program, qaoa_line_program, clean_metrics
    ):
        with CompilationService(
            executor="process", max_workers=2, keep_alive=True
        ) as service:
            # Two batches with distinct programs: both fan out, only the
            # first may fork.
            first = service.compile_many(
                [
                    CompilationJob("a1", tiny_program),
                    CompilationJob("a2", qaoa_line_program),
                ],
                workers=2,
            )
            stats_between = service.executor_stats()
            second = service.compile_many(
                [
                    CompilationJob("b1", tiny_program, CompilerOptions(seed=5)),
                    CompilationJob("b2", qaoa_line_program, CompilerOptions(seed=5)),
                ],
                workers=2,
            )
            assert all(result.ok for result in first + second)
            assert stats_between["keep_alive"] is True
            assert stats_between["pool_workers"] == 2
            forks = clean_metrics.counter("repro_executor_pool_forks_total")
            reuses = clean_metrics.counter("repro_executor_pool_reuses_total")
            assert forks.as_value() == 1
            assert reuses.as_value() >= 1
        # Leaving the with-block closes the pool.
        assert service.executor_stats()["pool_workers"] == 0

    def test_close_is_idempotent_and_safe_without_pool(self):
        service = CompilationService(keep_alive=True)
        service.close()
        service.close()
        assert service.executor_stats()["pool_workers"] == 0
