"""The remote cache tier: wire round trips, degradation, shared servers.

A real ``phoenix cache serve`` (:class:`CacheServeApp`) runs in a daemon
thread on an ephemeral port; :class:`RemoteCacheStore` talks to it over
actual sockets.  The two-process tests fork real interpreters that share
nothing with each other but the server — the ISSUE acceptance shape.

Module-level worker functions stay at the top so ``fork``/``spawn``
start methods can both import them.
"""

import asyncio
import multiprocessing
import socket
import threading

import pytest

from repro.bench import result_content_bytes
from repro.obs import metrics as obs_metrics
from repro.serialize.jsonutil import canonical_json_bytes
from repro.serve.cacheapp import CacheServeApp, CacheServeConfig
from repro.service import faultlab
from repro.service.cache import TieredCache, open_cache
from repro.service.registry import CompilerOptions
from repro.service.remotecache import (
    RemoteCacheStore,
    RemoteCacheUnavailable,
    valid_key,
)
from repro.service.resilience import CircuitBreaker
from repro.service.service import CompilationJob, CompilationService
from repro.service.shardcache import ShardedDiskCacheStore
from repro.workloads.registry import workload_from_spec

KEY = "a" * 16 + "-" + "b" * 16
OTHER = "c" * 16 + "-" + "d" * 16
ENTRY = {"metrics": {"depth": 3}, "circuit": ["h 0"], "nested": {"x": [1, 2]}}

SPEC = "tfim:n=6,lattice=chain"


def _job(spec: str) -> CompilationJob:
    workload = workload_from_spec(spec)
    return CompilationJob(workload.name, workload.to_terms(), CompilerOptions())


def compile_against_remote(url: str, spec: str) -> None:
    """One forked process compiling with only the remote tier for company."""
    service = CompilationService(cache=open_cache(url), executor="serial")
    result = service.compile_many([_job(spec)], workers=1)[0]
    assert result.ok, result.error
    service.close()


def _run_in_processes(target, argses):
    context = multiprocessing.get_context("fork")
    processes = [context.Process(target=target, args=args) for args in argses]
    for process in processes:
        process.start()
        process.join(timeout=120)
    exit_codes = [process.exitcode for process in processes]
    assert exit_codes == [0] * len(processes), exit_codes


def fast_breaker(min_calls: int = 2) -> CircuitBreaker:
    return CircuitBreaker(
        "cache.remote.test", window=4, min_calls=min_calls, cooldown=300.0
    )


class ServerHandle:
    def __init__(self, app: CacheServeApp):
        self.app = app
        self.thread = threading.Thread(
            target=lambda: asyncio.run(app.main()), daemon=True
        )

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.app.bound_port}"

    def start(self) -> "ServerHandle":
        self.thread.start()
        assert self.app.ready.wait(15), "cache server failed to start"
        return self

    def stop(self, timeout: float = 30.0) -> None:
        self.app.drain_token.set()
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "cache server did not drain"


@pytest.fixture
def cache_server(tmp_path):
    config = CacheServeConfig(cache_dir=str(tmp_path / "srv"), port=0)
    handle = ServerHandle(CacheServeApp(config)).start()
    yield handle
    if handle.thread.is_alive():
        handle.stop()


@pytest.fixture
def dead_url():
    """A URL nothing listens on: connections are refused immediately."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    return f"http://127.0.0.1:{port}"


class TestRoundTrip:
    def test_put_get_delete_keys_clear(self, cache_server):
        store = RemoteCacheStore(cache_server.url)
        try:
            assert store.get(KEY) is None  # clean miss, not an error
            store.put(KEY, ENTRY)
            store.put(OTHER, {"v": 2})
            assert store.get(KEY) == ENTRY
            assert sorted(store.keys()) == sorted([KEY, OTHER])
            assert KEY in store and "e" * 33 not in store
            assert len(store) == 2
            assert store.delete(OTHER) is True
            assert store.delete(OTHER) is False
            assert store.clear() == 1
            assert list(store.keys()) == []
            assert store.stats.hits == 1
            assert store.stats.puts == 2
            assert store.stats.io_errors == 0
            assert store.breaker.state == "closed"
        finally:
            store.close()

    def test_round_trip_preserves_nested_values_exactly(self, cache_server):
        writer = RemoteCacheStore(cache_server.url)
        reader = RemoteCacheStore(cache_server.url)
        try:
            writer.put(KEY, ENTRY)
            assert reader.get(KEY) == ENTRY
        finally:
            writer.close()
            reader.close()

    def test_invalid_keys_raise_for_the_caller(self, cache_server):
        store = RemoteCacheStore(cache_server.url)
        try:
            for bad in ("", "..", ".hidden", "a/b", "a b", "k\n"):
                assert not valid_key(bad)
                with pytest.raises(ValueError, match="invalid cache key"):
                    store.get(bad)
                with pytest.raises(ValueError, match="invalid cache key"):
                    store.put(bad, {})
                with pytest.raises(ValueError, match="invalid cache key"):
                    store.delete(bad)
        finally:
            store.close()

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="http"):
            RemoteCacheStore("ftp://host:21")
        with pytest.raises(ValueError, match="no host"):
            RemoteCacheStore("http://")

    def test_fetch_stats_and_usage_against_a_live_server(self, cache_server):
        store = RemoteCacheStore(cache_server.url)
        try:
            store.put(KEY, ENTRY)
            stats = store.fetch_stats()
            assert stats["usage"]["entries"] == 1
            assert stats["draining"] is False
            usage = store.usage()
            assert usage["reachable"] is True
            assert usage["breaker"] == "closed"
            assert usage["session"]["puts"] == 1
        finally:
            store.close()


class TestDegradation:
    def test_dead_server_degrades_to_misses_and_drops(
        self, dead_url, clean_metrics
    ):
        store = RemoteCacheStore(dead_url, timeout=0.2, breaker=fast_breaker())
        try:
            assert store.get(KEY) is None  # absorbed, never raises
            store.put(KEY, ENTRY)  # dropped, never raises
            assert store.stats.io_errors == 2
            assert store.breaker.state == "open"
            errors = obs_metrics.counter("repro_remote_cache_io_errors_total")
            assert errors.value == 2
        finally:
            store.close()

    def test_open_breaker_answers_without_touching_the_network(
        self, dead_url, clean_metrics
    ):
        store = RemoteCacheStore(
            dead_url, timeout=0.2, breaker=fast_breaker(min_calls=1)
        )
        try:
            store.get(KEY)
            assert store.breaker.state == "open"
            io_errors = store.stats.io_errors
            assert store.get(KEY) is None
            store.put(KEY, ENTRY)
            assert list(store.keys()) == []
            assert store.clear() == 0
            # No further network attempts: io_errors frozen, every
            # degraded answer counted.
            assert store.stats.io_errors == io_errors
            degraded = obs_metrics.counter(
                "repro_remote_cache_degraded_ops_total"
            )
            assert degraded.value >= 3
        finally:
            store.close()

    def test_ops_surfaces_do_raise_on_a_dead_server(self, dead_url):
        store = RemoteCacheStore(dead_url, timeout=0.2)
        try:
            with pytest.raises(RemoteCacheUnavailable, match="unreachable"):
                store.fetch_stats()
            usage = store.usage()
            assert usage["reachable"] is False
            assert usage["server"] is None
        finally:
            store.close()


class TestFaultlab:
    def test_remote_points_are_registered(self):
        assert {"remote.get", "remote.put", "remote.connect"} <= set(
            faultlab.FAULT_POINTS
        )
        scenario = faultlab.BUILTIN_SCENARIOS["remote-outage"]
        assert {fault["point"] for fault in scenario.faults} == {
            "remote.get", "remote.put", "remote.connect"
        }

    def test_injected_get_fault_degrades_to_a_miss(self, cache_server):
        store = RemoteCacheStore(cache_server.url)
        try:
            store.put(KEY, ENTRY)
            faultlab.inject("remote.get", "error", p=1.0)
            assert store.get(KEY) is None  # the entry exists, the wire died
            assert store.stats.io_errors == 1
            faultlab.clear()
            assert store.get(KEY) == ENTRY  # healthy again
        finally:
            store.close()

    def test_injected_connect_fault_absorbs_fresh_connections(self, cache_server):
        faultlab.inject("remote.connect", "error", p=1.0)
        store = RemoteCacheStore(cache_server.url)
        try:
            assert store.get(KEY) is None
            assert store.stats.io_errors == 1
        finally:
            store.close()

    def test_injected_put_fault_drops_the_write(self, cache_server):
        store = RemoteCacheStore(cache_server.url)
        try:
            faultlab.inject("remote.put", "error", p=1.0)
            store.put(KEY, ENTRY)
            assert store.stats.puts == 0
            assert store.stats.io_errors == 1
            faultlab.clear()
            assert store.get(KEY) is None  # nothing reached the server
        finally:
            store.close()


class TestTieredIntegration:
    def test_remote_hit_promotes_to_memory_and_disk(self, cache_server, tmp_path):
        seeder = RemoteCacheStore(cache_server.url)
        seeder.put(KEY, ENTRY)
        seeder.close()

        remote = RemoteCacheStore(cache_server.url)
        disk = ShardedDiskCacheStore(tmp_path / "disk")
        cache = TieredCache(disk=disk, remote=remote)
        try:
            assert cache.get(KEY) == ENTRY  # served from the wire
            assert disk.get(KEY) == ENTRY  # promoted for the next process
            assert cache.memory.get(KEY) == ENTRY
            assert cache.get(KEY) == ENTRY
            assert remote.stats.hits == 1  # second read never left memory
        finally:
            cache.close()

    def test_writes_fan_out_to_the_server(self, cache_server, tmp_path):
        cache = TieredCache(
            disk=ShardedDiskCacheStore(tmp_path / "disk"),
            remote=RemoteCacheStore(cache_server.url),
        )
        try:
            cache.put(KEY, ENTRY)
        finally:
            cache.close()
        observer = RemoteCacheStore(cache_server.url)
        try:
            assert observer.get(KEY) == ENTRY
        finally:
            observer.close()

    def test_server_death_mid_batch_completes_from_disk(self, tmp_path):
        """The ISSUE chaos scenario: the cache server dies between jobs.

        The batch must complete (disk + fresh compiles), the remote
        breaker must open, every failure must be counted — and a fresh
        process against the same disk must get pure cache hits with
        byte-identical payloads.
        """
        server = ServerHandle(
            CacheServeApp(CacheServeConfig(cache_dir=str(tmp_path / "srv"), port=0))
        ).start()
        disk_root = tmp_path / "disk"
        remote = RemoteCacheStore(
            server.url, timeout=0.3, breaker=fast_breaker()
        )
        cache = TieredCache(disk=ShardedDiskCacheStore(disk_root), remote=remote)
        service = CompilationService(cache=cache, executor="serial")
        jobs = [_job(SPEC), _job("tfim:n=5,lattice=chain")]

        first = service.compile_many([jobs[0]], workers=1)[0]
        assert first.ok and not first.cached

        server.stop()  # the server dies mid-batch

        results = service.compile_many(jobs, workers=1)
        assert [r.ok for r in results] == [True, True]  # batch completed
        assert results[0].cached  # memory tier, untouched by the outage
        assert not results[1].cached  # compiled fresh; remote get+put failed
        assert remote.stats.io_errors >= 2
        assert remote.breaker.state == "open"
        service.close()

        # A fresh process-equivalent (empty memory, same disk, dead
        # remote) is served entirely from disk: all hits, no new network
        # errors, byte-identical to the first run.
        warm_cache = TieredCache(
            disk=ShardedDiskCacheStore(disk_root), remote=remote
        )
        warm_service = CompilationService(cache=warm_cache, executor="serial")
        io_errors_before = remote.stats.io_errors
        warm = warm_service.compile_many(jobs, workers=1)
        assert all(r.ok and r.cached for r in warm)
        assert remote.stats.io_errors == io_errors_before
        for cold, hot in zip(results, warm):
            assert result_content_bytes(cold) == result_content_bytes(hot)
        warm_service.close()
        remote.close()


class TestSharedServerTwoProcesses:
    def test_two_processes_share_one_server_byte_identically(
        self, cache_server, tmp_path
    ):
        """The acceptance check: two interpreters, one cache server.

        The second process must be served from the first one's work, and
        the bytes on the server must match an independent local compile.
        """
        _run_in_processes(
            compile_against_remote, [(cache_server.url, SPEC)] * 2
        )

        observer = RemoteCacheStore(cache_server.url)
        try:
            keys = list(observer.keys())
            assert len(keys) == 1  # both processes agreed on one key
            session = observer.fetch_stats()["session"]
            assert session["hits"] >= 1  # the second process hit the wire

            # Byte identity: an in-process compile with a hermetic memory
            # cache must equal the server's entry, canonically encoded.
            service = CompilationService(cache=open_cache(None), executor="serial")
            local = service.compile_many([_job(SPEC)], workers=1)[0]
            assert local.ok and local.key == keys[0]
            entry = observer.get(keys[0])
            entry.pop("stage_timings", None)
            entry["cache_key"] = local.key
            assert canonical_json_bytes(entry) == result_content_bytes(local)
            service.close()
        finally:
            observer.close()
