"""Integration tests: end-to-end compilation equivalence and comparisons.

These tests exercise the full pipeline on a real (small) UCCSD instance and
a QAOA instance: every compiler's output must be unitarily equivalent to
the Trotter product it claims to implement, and the qualitative ordering of
the paper (PHOENIX produces fewer 2Q gates than the baselines) must hold.
"""

import numpy as np
import pytest

from repro.baselines import NaiveCompiler, PaulihedralCompiler, TetrisCompiler, TketLikeCompiler
from repro.chemistry.uccsd import uccsd_ansatz
from repro.core.compiler import PhoenixCompiler
from repro.hardware.topology import Topology
from repro.qaoa.ansatz import qaoa_program
from repro.qaoa.graphs import random_regular_graph
from repro.simulation.evolution import terms_unitary
from repro.simulation.unitary import circuit_unitary


@pytest.fixture(scope="module")
def h2_like_program():
    """A small UCCSD instance (2 electrons in 4 spin orbitals, JW)."""
    return uccsd_ansatz(2, 4, encoding="jw", seed=1)


@pytest.fixture(scope="module")
def bk_program():
    return uccsd_ansatz(2, 6, encoding="bk", seed=2)


def _overlap(result):
    reference = terms_unitary(result.implemented_terms)
    actual = circuit_unitary(result.circuit)
    return abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]


class TestUccsdEndToEnd:
    @pytest.mark.parametrize(
        "compiler_cls",
        [NaiveCompiler, PaulihedralCompiler, TetrisCompiler, TketLikeCompiler, PhoenixCompiler],
    )
    def test_every_compiler_is_exact_on_jw(self, compiler_cls, h2_like_program):
        result = compiler_cls().compile(h2_like_program)
        assert _overlap(result) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("compiler_cls", [PhoenixCompiler, PaulihedralCompiler])
    def test_exactness_on_bk(self, compiler_cls, bk_program):
        result = compiler_cls().compile(bk_program)
        assert _overlap(result) == pytest.approx(1.0, abs=1e-9)

    def test_phoenix_beats_baselines_on_2q_count(self, bk_program):
        counts = {}
        for name, compiler in (
            ("naive", NaiveCompiler()),
            ("paulihedral", PaulihedralCompiler()),
            ("phoenix", PhoenixCompiler()),
        ):
            counts[name] = compiler.compile(bk_program).metrics.cx_count
        assert counts["phoenix"] < counts["paulihedral"] <= counts["naive"]

    def test_phoenix_su4_advantage(self, bk_program):
        cnot = PhoenixCompiler(isa="cnot").compile(bk_program)
        su4 = PhoenixCompiler(isa="su4").compile(bk_program)
        assert su4.metrics.two_qubit_count <= cnot.metrics.cx_count


class TestHardwareAwareEndToEnd:
    def test_phoenix_on_grid_respects_connectivity_and_is_exact_up_to_layout(self):
        program = uccsd_ansatz(2, 4, encoding="jw", seed=3)
        topology = Topology.grid(2, 3)
        result = PhoenixCompiler(topology=topology).compile(program)
        for gate in result.circuit:
            if gate.is_two_qubit():
                assert topology.are_connected(*gate.qubits)
        assert result.routing_overhead >= 1.0 or result.metrics.swap_count == 0

    def test_qaoa_compilation_on_ring(self):
        graph = random_regular_graph(3, 8, seed=4)
        program = qaoa_program(graph)
        topology = Topology.ring(8)
        result = PhoenixCompiler(topology=topology).compile(program)
        assert result.metrics.cx_count >= 2 * len(program)
        for gate in result.circuit:
            if gate.is_two_qubit():
                assert topology.are_connected(*gate.qubits)
