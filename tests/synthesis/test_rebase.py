"""Tests for ISA rebase to {CNOT, 1Q}."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_NAMES_2Q
from repro.simulation.unitary import circuit_unitary
from repro.synthesis.rebase import rebase_to_cx

_ALLOWED_2Q_AFTER_REBASE = {"cx"}


def _assert_equivalent(original: QuantumCircuit, rebased: QuantumCircuit):
    a = circuit_unitary(original)
    b = circuit_unitary(rebased)
    overlap = abs(np.trace(a.conj().T @ b)) / a.shape[0]
    assert overlap == pytest.approx(1.0, abs=1e-9)


class TestRebase:
    def test_controlled_paulis(self):
        circuit = QuantumCircuit(2)
        for kind in ("xx", "yy", "zz", "xy", "yz", "zx"):
            circuit.controlled_pauli(kind, 0, 1)
        rebased = rebase_to_cx(circuit)
        assert {g.name for g in rebased if g.is_two_qubit()} <= _ALLOWED_2Q_AFTER_REBASE
        _assert_equivalent(circuit, rebased)

    def test_two_qubit_rotations(self):
        circuit = QuantumCircuit(3)
        circuit.rxx(0.3, 0, 1).ryy(-0.2, 1, 2).rzz(0.7, 0, 2).rzx(0.4, 2, 1)
        circuit.rpp("y", "z", 0.25, 0, 2)
        rebased = rebase_to_cx(circuit)
        assert {g.name for g in rebased if g.is_two_qubit()} <= _ALLOWED_2Q_AFTER_REBASE
        _assert_equivalent(circuit, rebased)

    def test_swap_cz_cy(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1).cz(0, 1).cy(1, 0)
        rebased = rebase_to_cx(circuit)
        assert {g.name for g in rebased if g.is_two_qubit()} <= _ALLOWED_2Q_AFTER_REBASE
        _assert_equivalent(circuit, rebased)

    def test_plain_gates_pass_through(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.1, 1)
        rebased = rebase_to_cx(circuit)
        assert [g.name for g in rebased] == ["h", "cx", "rz"]

    def test_identity_rpp_emits_nothing_2q(self):
        circuit = QuantumCircuit(2)
        circuit.rpp("i", "z", 0.5, 0, 1)
        rebased = rebase_to_cx(circuit)
        assert rebased.count_2q() == 0
        _assert_equivalent(circuit, rebased)
