"""Tests for conventional Pauli-exponentiation synthesis."""

import numpy as np
import pytest

from repro.paulis.pauli import PauliTerm
from repro.simulation.evolution import pauli_exponential_unitary, terms_unitary
from repro.simulation.unitary import circuit_unitary
from repro.synthesis.pauli_exp import (
    synthesize_pauli_term,
    synthesize_terms,
    synthesize_weight2_term,
)


def _check_term(term: PauliTerm, **kwargs):
    circuit = synthesize_pauli_term(term, **kwargs)
    assert np.allclose(
        circuit_unitary(circuit), pauli_exponential_unitary(term), atol=1e-9
    )
    return circuit


class TestSingleTermSynthesis:
    @pytest.mark.parametrize("label", ["ZZI", "XIY", "YYX", "IZX", "XYZ"])
    def test_chain_synthesis_is_exact(self, label):
        _check_term(PauliTerm.from_label(label, 0.37))

    @pytest.mark.parametrize("label", ["ZZZ", "XYX"])
    def test_star_synthesis_is_exact(self, label):
        _check_term(PauliTerm.from_label(label, -0.21), tree="star")

    def test_weight_one_term_uses_single_rotation(self):
        circuit = _check_term(PauliTerm.from_label("IZI", 0.5))
        assert circuit.count_2q() == 0

    def test_cnot_count_of_chain(self):
        circuit = synthesize_pauli_term(PauliTerm.from_label("XXYZ", 0.1))
        assert circuit.count("cx") == 6  # 2 * (weight - 1)

    def test_custom_support_order(self):
        term = PauliTerm.from_label("XZZ", 0.3)
        circuit = synthesize_pauli_term(term, support_order=[2, 0, 1])
        assert np.allclose(
            circuit_unitary(circuit), pauli_exponential_unitary(term), atol=1e-9
        )

    def test_invalid_support_order_rejected(self):
        with pytest.raises(ValueError):
            synthesize_pauli_term(PauliTerm.from_label("XZ", 0.3), support_order=[0])

    def test_unknown_tree_rejected(self):
        with pytest.raises(ValueError):
            synthesize_pauli_term(PauliTerm.from_label("XZ", 0.3), tree="bush")


class TestProgramSynthesis:
    def test_terms_unitary_matches(self, tiny_program):
        circuit = synthesize_terms(tiny_program)
        assert np.allclose(
            circuit_unitary(circuit), terms_unitary(tiny_program), atol=1e-9
        )

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            synthesize_terms([])


class TestWeight2Synthesis:
    def test_native_rotation_is_exact(self):
        term = PauliTerm.from_label("IXZ", 0.4)
        circuit = synthesize_weight2_term(term, as_native_rotation=True)
        assert circuit.count_2q() == 1
        assert circuit[0].name == "rpp"
        assert np.allclose(
            circuit_unitary(circuit), pauli_exponential_unitary(term), atol=1e-9
        )

    def test_rejects_weight_three(self):
        with pytest.raises(ValueError):
            synthesize_weight2_term(PauliTerm.from_label("XYZ", 0.1))
