"""Tests for SU(4) block consolidation."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.synthesis.consolidate import consolidate_su4, su4_metrics


class TestConsolidate:
    def test_same_pair_run_becomes_one_su4(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.3, 1).cx(0, 1).h(0).cx(1, 0)
        consolidated = consolidate_su4(circuit)
        assert consolidated.count_2q() == 1
        assert consolidated[0].name == "su4"

    def test_unitary_preserved(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.3, 1).cx(0, 1).cx(1, 2).rxx(0.4, 1, 2).cx(0, 1)
        consolidated = consolidate_su4(circuit)
        a = circuit_unitary(circuit)
        b = circuit_unitary(consolidated)
        overlap = abs(np.trace(a.conj().T @ b)) / a.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_interleaving_pair_splits_blocks(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        consolidated = consolidate_su4(circuit)
        assert consolidated.count_2q() == 3

    def test_su4_metrics(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1).cx(0, 1)
        metrics = su4_metrics(circuit)
        assert metrics["su4_count"] == 1
        assert metrics["depth_2q"] == 1

    def test_reversed_pair_orientation_merges(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        consolidated = consolidate_su4(circuit)
        assert consolidated.count_2q() == 1
        a = circuit_unitary(circuit)
        b = circuit_unitary(consolidated)
        assert abs(np.trace(a.conj().T @ b)) / 4 == pytest.approx(1.0, abs=1e-9)

    def test_lone_single_qubit_gates_survive(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        consolidated = consolidate_su4(circuit)
        # The leading H has no open block yet, so it is passed through.
        assert consolidated.count("h") == 1
