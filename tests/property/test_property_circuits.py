"""Property-based tests for circuit depth/layer invariants and Pauli algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import circuit_depth, circuit_layers
from repro.paulis.pauli import PauliString

_LETTERS = "IXYZ"
_labels = st.text(alphabet=_LETTERS, min_size=3, max_size=3)


class TestPauliAlgebraProperties:
    @given(a=_labels, b=_labels)
    @settings(max_examples=80, deadline=None)
    def test_commutation_is_symmetric_and_matches_matrices(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        assert pa.commutes_with(pb) == pb.commutes_with(pa)
        commutator = pa.to_matrix() @ pb.to_matrix() - pb.to_matrix() @ pa.to_matrix()
        assert pa.commutes_with(pb) == bool(np.allclose(commutator, 0))

    @given(a=_labels, b=_labels)
    @settings(max_examples=80, deadline=None)
    def test_compose_weight_bound(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        _, product = pa.compose(pb)
        assert product.weight() <= pa.weight() + pb.weight()

    @given(label=_labels)
    @settings(max_examples=40, deadline=None)
    def test_label_roundtrip(self, label):
        assert PauliString.from_label(label).to_label() == label


@st.composite
def cx_circuits(draw):
    num_qubits = draw(st.integers(2, 5))
    length = draw(st.integers(0, 30))
    circuit = QuantumCircuit(num_qubits)
    for _ in range(length):
        pair = draw(st.permutations(range(num_qubits)))
        circuit.cx(int(pair[0]), int(pair[1]))
    return circuit


class TestDepthProperties:
    @given(circuit=cx_circuits())
    @settings(max_examples=50, deadline=None)
    def test_layers_partition_all_gates(self, circuit):
        layers = circuit_layers(circuit, two_qubit_only=True)
        assert sum(len(layer) for layer in layers) == len(circuit)
        assert len(layers) == circuit_depth(circuit, two_qubit_only=True)

    @given(circuit=cx_circuits())
    @settings(max_examples=50, deadline=None)
    def test_no_layer_reuses_a_qubit(self, circuit):
        for layer in circuit_layers(circuit, two_qubit_only=True):
            used = [q for gate in layer for q in gate.qubits]
            assert len(used) == len(set(used))

    @given(circuit=cx_circuits())
    @settings(max_examples=50, deadline=None)
    def test_depth_bounds(self, circuit):
        depth = circuit_depth(circuit, two_qubit_only=True)
        assert depth <= len(circuit)
        if len(circuit) > 0:
            assert depth >= 1
