"""Property-based tests for the BSF and Clifford conjugation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.simplify import simplify_group
from repro.core.grouping import IRGroup
from repro.paulis.bsf import BSF, CLIFFORD2Q_KINDS
from repro.paulis.pauli import PauliString, PauliTerm

_LETTERS = "IXYZ"


def _labels(num_qubits, min_rows=1, max_rows=6):
    label = st.text(alphabet=_LETTERS, min_size=num_qubits, max_size=num_qubits)
    return st.lists(label, min_size=min_rows, max_size=max_rows).filter(
        lambda rows: any(set(r) != {"I"} for r in rows)
    )


def _nontrivial_terms(rows):
    return [PauliTerm.from_label(r, 0.1 * (i + 1)) for i, r in enumerate(rows) if set(r) != {"I"}]


class TestCliffordConjugationProperties:
    @given(rows=_labels(4), kind=st.sampled_from(CLIFFORD2Q_KINDS),
           pair=st.permutations(range(4)))
    @settings(max_examples=60, deadline=None)
    def test_conjugation_preserves_row_count_and_is_involutory(self, rows, kind, pair):
        terms = _nontrivial_terms(rows)
        if not terms:
            return
        bsf = BSF.from_terms(terms)
        original = bsf.copy()
        control, target = pair[0], pair[1]
        bsf.apply_clifford2q(kind, control, target)
        assert bsf.num_terms == original.num_terms
        bsf.apply_clifford2q(kind, control, target)
        assert np.array_equal(bsf.x, original.x)
        assert np.array_equal(bsf.z, original.z)
        assert np.array_equal(bsf.signs, original.signs)

    @given(rows=_labels(4), kind=st.sampled_from(CLIFFORD2Q_KINDS),
           pair=st.permutations(range(4)))
    @settings(max_examples=60, deadline=None)
    def test_conjugation_preserves_commutation_structure(self, rows, kind, pair):
        """Clifford conjugation is an automorphism of the Pauli group: the
        pairwise commutation matrix of the rows is invariant."""
        terms = _nontrivial_terms(rows)
        if len(terms) < 2:
            return
        bsf = BSF.from_terms(terms)

        def commutation_matrix(b):
            strings = [PauliString(b.x[i], b.z[i]) for i in range(b.num_terms)]
            return [
                [strings[i].commutes_with(strings[j]) for j in range(len(strings))]
                for i in range(len(strings))
            ]

        before = commutation_matrix(bsf)
        bsf.apply_clifford2q(kind, pair[0], pair[1])
        assert commutation_matrix(bsf) == before

    @given(rows=_labels(4))
    @settings(max_examples=40, deadline=None)
    def test_coefficients_never_change_magnitude(self, rows):
        terms = _nontrivial_terms(rows)
        if not terms:
            return
        bsf = BSF.from_terms(terms)
        magnitudes = np.abs(bsf.coefficients).copy()
        for kind in CLIFFORD2Q_KINDS:
            bsf.apply_clifford2q(kind, 0, 1)
        assert np.allclose(np.abs(bsf.coefficients), magnitudes)
        assert set(np.unique(bsf.signs)) <= {-1, 1}


class TestSimplificationProperties:
    @given(rows=_labels(4, min_rows=2, max_rows=5))
    @settings(max_examples=30, deadline=None)
    def test_simplification_always_reaches_weight_two(self, rows):
        terms = _nontrivial_terms(rows)
        if not terms:
            return
        # Build one group per support and simplify each.
        from repro.core.grouping import group_terms

        for group in group_terms(terms):
            simplified = simplify_group(group)
            union = set()
            for term in simplified.final_terms:
                union.update(term.support())
            assert len(union) <= 2
            assert sorted(simplified.implemented_order) == list(range(group.num_terms))
