"""Property-based tests: optimisation passes must preserve the unitary."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.synthesis.rebase import rebase_to_cx
from repro.transforms.optimize import optimize_circuit

_NUM_QUBITS = 3

_gate_choice = st.sampled_from(
    ["h", "s", "sdg", "t", "x", "rz", "rx", "cx", "cz", "rzz", "cxy", "swap"]
)


@st.composite
def random_circuits(draw):
    length = draw(st.integers(min_value=1, max_value=25))
    circuit = QuantumCircuit(_NUM_QUBITS)
    for _ in range(length):
        name = draw(_gate_choice)
        if name in ("cx", "cz", "rzz", "cxy", "swap"):
            qubits = draw(st.permutations(range(_NUM_QUBITS)))
            a, b = int(qubits[0]), int(qubits[1])
            if name == "rzz":
                circuit.rzz(draw(st.floats(-3, 3, allow_nan=False)), a, b)
            elif name == "cxy":
                circuit.controlled_pauli("xy", a, b)
            elif name == "swap":
                circuit.swap(a, b)
            elif name == "cz":
                circuit.cz(a, b)
            else:
                circuit.cx(a, b)
        else:
            qubit = draw(st.integers(0, _NUM_QUBITS - 1))
            if name in ("rz", "rx"):
                angle = draw(st.floats(-3, 3, allow_nan=False))
                getattr(circuit, name)(angle, qubit)
            else:
                getattr(circuit, name)(qubit)
    return circuit


def _overlap(a, b):
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    return abs(np.trace(ua.conj().T @ ub)) / ua.shape[0]


class TestOptimisationPreservesSemantics:
    @given(circuit=random_circuits(), level=st.sampled_from([2, 3]))
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_unitary_up_to_global_phase(self, circuit, level):
        optimized = optimize_circuit(circuit, level=level)
        assert np.isclose(_overlap(circuit, optimized), 1.0, atol=1e-8)
        assert optimized.count_2q() <= circuit.count_2q()

    @given(circuit=random_circuits())
    @settings(max_examples=30, deadline=None)
    def test_rebase_preserves_unitary_and_isa(self, circuit):
        rebased = rebase_to_cx(circuit)
        assert np.isclose(_overlap(circuit, rebased), 1.0, atol=1e-8)
        assert {g.name for g in rebased if g.is_two_qubit()} <= {"cx"}
