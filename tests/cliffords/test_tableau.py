"""Tests for the Clifford tableau."""

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.cliffords.tableau import CliffordTableau
from repro.paulis.pauli import PauliString
from repro.simulation.unitary import circuit_unitary


class TestCliffordTableau:
    def test_identity_tableau(self):
        tableau = CliffordTableau(2)
        phase, image = tableau.conjugate(PauliString.from_label("XZ"))
        assert phase == 1
        assert image.to_label() == "XZ"

    def test_single_gates(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        tableau = CliffordTableau.from_circuit(circuit)
        phase, image = tableau.conjugate(PauliString.from_label("Y"))
        assert image.to_label() == "Y"
        assert phase == -1

    def test_matches_dense_conjugation(self):
        rng = np.random.default_rng(11)
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).s(1).cx(1, 2).h(2).sdg(0).cx(2, 0)
        tableau = CliffordTableau.from_circuit(circuit)
        conj = circuit_unitary(circuit)
        letters = np.array(list("IXYZ"))
        for _ in range(20):
            label = "".join(rng.choice(letters, 3))
            pauli = PauliString.from_label(label)
            phase, image = tableau.conjugate(pauli)
            expected = conj @ pauli.to_matrix() @ conj.conj().T
            assert np.allclose(expected, phase * image.to_matrix(), atol=1e-9)

    def test_equality(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert CliffordTableau.from_circuit(circuit) == CliffordTableau.from_circuit(circuit)
        assert CliffordTableau.from_circuit(circuit) != CliffordTableau(2)
