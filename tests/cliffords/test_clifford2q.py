"""Tests for the universal controlled Paulis and Pauli conjugation helpers."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.cliffords.clifford2q import CLIFFORD2Q_KINDS, Clifford2Q, all_clifford2q_on
from repro.cliffords.conjugation import (
    conjugate_pauli_by_circuit,
    conjugate_pauli_by_gate,
)
from repro.paulis.pauli import PauliString
from repro.simulation.unitary import circuit_unitary


class TestClifford2Q:
    def test_czx_is_cnot(self):
        gate = Clifford2Q("zx", 0, 1)
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        assert np.allclose(gate.matrix(), cnot)

    @pytest.mark.parametrize("kind", CLIFFORD2Q_KINDS)
    def test_hermitian_and_involutory(self, kind):
        matrix = Clifford2Q(kind, 0, 1).matrix()
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(matrix @ matrix, np.eye(4))

    @pytest.mark.parametrize("kind", CLIFFORD2Q_KINDS)
    def test_basic_gate_decomposition_matches(self, kind):
        gate = Clifford2Q(kind, 0, 1)
        circuit = QuantumCircuit(2, gate.to_basic_gates())
        unitary = circuit_unitary(circuit)
        reference = gate.matrix()
        index = np.unravel_index(np.argmax(np.abs(reference)), reference.shape)
        phase = unitary[index] / reference[index]
        assert np.allclose(unitary, phase * reference, atol=1e-9)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Clifford2Q("zz", 1, 1)
        with pytest.raises(ValueError):
            Clifford2Q("qq", 0, 1)

    def test_all_clifford2q_on_counts(self):
        gates = all_clifford2q_on([0, 1, 2])
        # 3 unordered pairs x (3 symmetric + 3 asymmetric x 2 orientations).
        assert len(gates) == 3 * (3 + 6)


class TestConjugation:
    def test_conjugate_by_h(self):
        pauli = PauliString.from_label("X")
        result = conjugate_pauli_by_gate(pauli, Gate("h", (0,)))
        assert result.to_label() == "Z"

    def test_conjugate_by_pauli_gate_flips_sign(self):
        pauli = PauliString.from_label("Z")
        result = conjugate_pauli_by_gate(pauli, Gate("x", (0,)))
        assert result.to_label() == "Z"
        assert result.sign == -1

    def test_conjugate_by_swap(self):
        pauli = PauliString.from_label("XZ")
        result = conjugate_pauli_by_gate(pauli, Gate("swap", (0, 1)))
        assert result.to_label() == "ZX"

    def test_non_clifford_rejected(self):
        with pytest.raises(ValueError):
            conjugate_pauli_by_gate(PauliString.from_label("X"), Gate("t", (0,)))

    def test_circuit_conjugation_matches_matrices(self):
        rng = np.random.default_rng(5)
        circuit = QuantumCircuit(3)
        circuit.h(0).s(1).cx(0, 1).cx(1, 2).sdg(2).controlled_pauli("xy", 2, 0)
        conj = circuit_unitary(circuit)
        letters = np.array(list("IXYZ"))
        for _ in range(10):
            label = "".join(rng.choice(letters, 3))
            pauli = PauliString.from_label(label)
            result = conjugate_pauli_by_circuit(pauli, circuit)
            expected = conj @ pauli.to_matrix() @ conj.conj().T
            assert np.allclose(expected, result.to_matrix(), atol=1e-9)
