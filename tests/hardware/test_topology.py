"""Tests for device topologies."""

import numpy as np
import pytest

from repro.hardware.topology import Topology


class TestTopologyConstructors:
    def test_all_to_all(self):
        topo = Topology.all_to_all(5)
        assert topo.is_all_to_all()
        assert topo.graph.number_of_edges() == 10

    def test_line_and_ring(self):
        line = Topology.line(4)
        assert line.distance(0, 3) == 3
        ring = Topology.ring(4)
        assert ring.distance(0, 3) == 1

    def test_grid(self):
        grid = Topology.grid(2, 3)
        assert grid.num_qubits == 6
        assert grid.are_connected(0, 3)
        assert not grid.are_connected(0, 4)

    def test_heavy_hex_manhattan_is_64_qubits(self):
        topo = Topology.ibm_manhattan()
        assert topo.num_qubits == 64
        # Heavy-hex degree never exceeds 3.
        assert max(topo.degree(q) for q in range(topo.num_qubits)) <= 3
        # Connected device.
        assert np.all(np.isfinite(topo.distance_matrix()))

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 0)])
        with pytest.raises(ValueError):
            Topology(2, [(0, 5)])


class TestTopologyQueries:
    def test_distance_matrix_symmetry(self):
        topo = Topology.grid(3, 3)
        distances = topo.distance_matrix()
        assert np.allclose(distances, distances.T)
        assert distances[0, 8] == 4

    def test_neighbors_and_shortest_path(self):
        topo = Topology.line(5)
        assert topo.neighbors(2) == [1, 3]
        assert topo.shortest_path(0, 4) == [0, 1, 2, 3, 4]

    def test_edges_sorted_pairs(self):
        topo = Topology.line(3)
        assert set(topo.edges()) == {(0, 1), (1, 2)}
