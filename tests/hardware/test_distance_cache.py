"""Tests for the content-addressed all-pairs-distance cache."""

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.hardware import topology as topology_module
from repro.hardware.routing.sabre import route_circuit
from repro.hardware.topology import Topology


def _routing_fixture_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(6)
    rng = np.random.default_rng(3)
    pairs = [(0, 5), (1, 4), (2, 3), (0, 3), (1, 5), (2, 4), (0, 4)]
    for a, b in pairs:
        circuit.h(a)
        circuit.cx(a, b)
        circuit.rz(float(rng.normal()), b)
    return circuit


class TestDistanceCache:
    def test_equal_topologies_share_fingerprint_and_matrix(self):
        first = Topology.heavy_hex()
        second = Topology.ibm_manhattan()
        assert first.fingerprint() == second.fingerprint()
        # Same content -> the very same (read-only) cached matrix object.
        assert first.distance_matrix() is second.distance_matrix()
        assert not first.distance_matrix().flags.writeable

    def test_distances_match_uncached_computation(self):
        topology_module._DISTANCE_CACHE.clear()
        grid = Topology.grid(3, 4)
        dist = grid.distance_matrix()
        assert dist[0, 11] == 5  # (0,0) -> (2,3): 2 down + 3 right
        assert dist[0, 0] == 0
        assert np.all(dist == dist.T)

    def test_graph_mutation_invalidates_cache(self):
        line = Topology.line(5)
        assert line.distance(0, 4) == 4
        line.graph.add_edge(0, 4)  # mutate the coupling graph in place
        # The content fingerprint changes, so the stale matrix is dropped.
        assert line.distance(0, 4) == 1
        assert line.distance(1, 4) == 2

    def test_sabre_routing_unchanged_by_cache(self):
        circuit = _routing_fixture_circuit()

        topology_module._DISTANCE_CACHE.clear()
        cold = route_circuit(circuit, Topology.line(6), seed=0)

        # Warm path: an equal-but-distinct topology hits the shared cache.
        assert topology_module._DISTANCE_CACHE
        warm = route_circuit(circuit, Topology.line(6), seed=0)

        assert warm.swap_count == cold.swap_count
        assert warm.initial_mapping == cold.initial_mapping
        assert warm.final_mapping == cold.final_mapping
        assert [
            (g.name, g.qubits, g.params) for g in warm.circuit
        ] == [(g.name, g.qubits, g.params) for g in cold.circuit]
