"""Tests for SABRE-style mapping and routing."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.routing.sabre import route_circuit, sabre_initial_mapping
from repro.hardware.topology import Topology
from repro.simulation.unitary import circuit_unitary


def _undo_final_permutation(routed) -> QuantumCircuit:
    """Append SWAPs returning every logical qubit to its initial location.

    Assumes the routing started from the identity initial mapping, so after
    the appended SWAPs the routed circuit should implement the logical
    circuit exactly (same qubit labels).
    """
    circuit = routed.circuit.copy()
    current = dict(routed.final_mapping)
    for logical_q in sorted(current):
        want = routed.initial_mapping[logical_q]
        have = current[logical_q]
        if want == have:
            continue
        other = next((l for l, p in current.items() if p == want), None)
        circuit.swap(have, want)
        current[logical_q] = want
        if other is not None:
            current[other] = have
    return circuit


class TestInitialMapping:
    def test_mapping_is_injective(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        topo = Topology.line(6)
        mapping = sabre_initial_mapping(circuit, topo)
        assert len(set(mapping.values())) == circuit.num_qubits

    def test_rejects_too_small_topology(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        with pytest.raises(ValueError):
            sabre_initial_mapping(circuit, Topology.line(2))


class TestRouting:
    def test_all_to_all_is_a_noop(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        routed = route_circuit(circuit, Topology.all_to_all(3))
        assert routed.swap_count == 0
        assert len(routed.circuit) == 1

    def test_all_routed_2q_gates_respect_topology(self):
        rng = np.random.default_rng(2)
        circuit = QuantumCircuit(5)
        for _ in range(15):
            a, b = rng.choice(5, 2, replace=False)
            circuit.cx(int(a), int(b))
        topo = Topology.line(5)
        routed = route_circuit(circuit, topo)
        for gate in routed.circuit:
            if gate.is_two_qubit():
                assert topo.are_connected(*gate.qubits)

    def test_swaps_inserted_for_distant_interaction(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        topo = Topology.line(4)
        routed = route_circuit(circuit, topo, initial_mapping={i: i for i in range(4)})
        assert routed.swap_count >= 1

    def test_routed_unitary_equivalence_on_line(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3).rz(0.3, 3).cx(1, 3).h(0).cx(0, 2)
        topo = Topology.line(4)
        routed = route_circuit(circuit, topo, initial_mapping={i: i for i in range(4)})
        corrected = _undo_final_permutation(routed)
        a = circuit_unitary(circuit)
        b = circuit_unitary(corrected)
        overlap = abs(np.trace(a.conj().T @ b)) / a.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_decompose_swaps_flag(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        routed = route_circuit(
            circuit, Topology.line(4), initial_mapping={i: i for i in range(4)},
            decompose_swaps=True,
        )
        assert routed.circuit.count("swap") == 0
        assert routed.circuit.count("cx") >= 4

    def test_cx_equivalent_swap_overhead(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        routed = route_circuit(
            circuit, Topology.line(4), initial_mapping={i: i for i in range(4)}
        )
        assert routed.cx_equivalent_swap_overhead() == 3 * routed.swap_count

    def test_one_qubit_gates_follow_mapping(self):
        circuit = QuantumCircuit(3)
        circuit.h(2).cx(0, 2)
        topo = Topology.line(3)
        routed = route_circuit(circuit, topo, initial_mapping={0: 0, 1: 1, 2: 2})
        h_gates = [g for g in routed.circuit if g.name == "h"]
        assert len(h_gates) == 1
