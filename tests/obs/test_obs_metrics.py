"""Metrics registry, quantiles, Prometheus rendering, and log setup."""

import json
import logging

import pytest

from repro.obs import configure
from repro.obs.metrics import (
    MAX_SAMPLES,
    Counter,
    Histogram,
    MetricsRegistry,
    counter,
    quantile,
)


class TestQuantile:
    def test_empty_and_singleton(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.0], 0.95) == 3.0

    def test_interpolates_between_samples(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert quantile(values, 0.5) == pytest.approx(1.5)
        assert quantile(values, 0.0) == 0.0
        assert quantile(values, 1.0) == 3.0


class TestCounterAndGauge:
    def test_counter_only_goes_up(self):
        series = Counter()
        series.inc()
        series.inc(2.5)
        assert series.as_value() == 3.5
        with pytest.raises(ValueError):
            series.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        depth = registry.gauge("repro_queue_depth")
        depth.set(5)
        depth.dec(2)
        assert depth.as_value() == 3.0


class TestHistogram:
    def test_counts_sum_and_percentiles(self):
        series = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            series.observe(value)
        view = series.as_value()
        assert view["count"] == 4
        assert view["sum"] == pytest.approx(6.05)
        assert view["buckets"] == {"0.1": 1, "1": 3, "10": 4}
        assert view["p50"] == pytest.approx(0.5)
        assert view["max"] == 5.0

    def test_reservoir_is_bounded(self):
        series = Histogram(buckets=(1.0,))
        for index in range(MAX_SAMPLES + 100):
            series.observe(float(index))
        assert series.count == MAX_SAMPLES + 100
        assert len(series._samples) == MAX_SAMPLES

    def test_extrema_stay_exact_past_the_reservoir_cap(self):
        """Regression: max/min must track every observation, not just the
        first MAX_SAMPLES that land in the quantile reservoir."""
        series = Histogram(buckets=(1.0,))
        for index in range(MAX_SAMPLES):
            series.observe(100.0 + index)
        # These arrive after the reservoir is full.
        series.observe(99999.0)
        series.observe(0.25)
        view = series.as_value()
        assert view["max"] == 99999.0
        assert view["min"] == 0.25

    def test_empty_histogram_extrema_are_zero(self):
        view = Histogram(buckets=(1.0,)).as_value()
        assert view["max"] == 0.0
        assert view["min"] == 0.0

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 0.5))


class TestRegistry:
    def test_same_name_and_labels_share_a_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", layer="disk").inc()
        registry.counter("repro_hits_total", layer="disk").inc()
        registry.counter("repro_hits_total", layer="memory").inc()
        snap = registry.snapshot()
        assert snap["repro_hits_total"] == {
            "layer=disk": 2.0,
            "layer=memory": 1.0,
        }

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_widget")
        with pytest.raises(ValueError):
            registry.gauge("repro_widget")

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", outcome="ok").inc(3)
        registry.histogram("repro_job_seconds").observe(0.25)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", outcome="ok").inc(3)
        registry.gauge("repro_queue_depth").set(2)
        registry.histogram(
            "repro_job_seconds", buckets=(0.1, 1.0)
        ).observe(0.25)
        text = registry.render_prometheus()
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{outcome="ok"} 3' in text
        assert 'repro_queue_depth 2' in text
        assert 'repro_job_seconds_bucket{le="1"} 1' in text
        assert 'repro_job_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_job_seconds_count 1' in text

    def test_module_helpers_hit_the_default_registry(self):
        from repro.obs.metrics import REGISTRY

        counter("repro_test_total", widget="a").inc()
        assert REGISTRY.snapshot()["repro_test_total"] == {"widget=a": 1.0}


class TestConfigureLogging:
    @pytest.fixture(autouse=True)
    def restore_repro_logger(self):
        root = logging.getLogger("repro")
        before = (list(root.handlers), root.level, root.propagate)
        yield
        root.handlers[:], root.level, root.propagate = (
            before[0], before[1], before[2]
        )

    def test_plain_handler_formats_level_and_logger(self, capsys):
        import io

        stream = io.StringIO()
        configure(level="DEBUG", stream=stream)
        logging.getLogger("repro.test_metrics").debug("hello %s", "world")
        assert "hello world" in stream.getvalue()
        assert "repro.test_metrics" in stream.getvalue()

    def test_json_lines_carry_extra_fields(self):
        import io

        stream = io.StringIO()
        configure(level="INFO", json_lines=True, stream=stream)
        logging.getLogger("repro.test_metrics").info(
            "batch done", extra={"jobs": 4}
        )
        record = json.loads(stream.getvalue())
        assert record["message"] == "batch done"
        assert record["level"] == "INFO"
        assert record["jobs"] == 4

    def test_reconfigure_replaces_the_previous_handler(self):
        import io

        first, second = io.StringIO(), io.StringIO()
        configure(level="INFO", stream=first)
        configure(level="INFO", stream=second)
        logging.getLogger("repro.test_metrics").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1
