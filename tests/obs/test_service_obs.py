"""Observability wiring through the service stack, end to end.

These tests run real (tiny) compilations through
:class:`~repro.service.service.CompilationService` and assert that the
trace a batch leaves behind is one coherent tree — including spans
recorded inside forked process-pool workers — and that the cache/job/
executor counters move the way the batch actually went.
"""

import logging
import os
import time
from pathlib import Path

import pytest

from repro.obs import metrics, trace
from repro.service.cache import open_cache
from repro.service.executor import ProcessExecutor, SerialExecutor
from repro.service.registry import CompilerOptions
from repro.service.service import CompilationJob, CompilationService
from repro.service.shardcache import ShardedDiskCacheStore
from repro.workloads.registry import workload_from_spec

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based pool unavailable"
)


def tiny_jobs(count=2):
    specs = [
        "tfim:n=5,lattice=chain",
        "xxz:n=4,lattice=chain",
        "heisenberg:n=4,lattice=chain",
    ]
    return [
        CompilationJob(spec, workload_from_spec(spec).to_terms(), CompilerOptions())
        for spec in specs[:count]
    ]


class TestCounterWiring:
    def test_miss_then_hit_counters_through_a_batch(self, tmp_path):
        service = CompilationService(cache=open_cache(str(tmp_path / "cache")))
        jobs = tiny_jobs(2)
        service.compile_many(jobs, workers=1, executor="serial")
        snap = metrics.REGISTRY.snapshot()
        assert snap["repro_cache_misses_total"]["layer=service"] == 2.0
        assert snap["repro_jobs_total"]["outcome=miss"] == 2.0
        assert "repro_cache_hits_total" not in snap

        service.compile_many(jobs, workers=1, executor="serial")
        snap = metrics.REGISTRY.snapshot()
        assert snap["repro_cache_hits_total"]["layer=service"] == 2.0
        assert snap["repro_jobs_total"]["outcome=hit"] == 2.0
        # Per-stage and per-job histograms observed the compiled pass.
        assert snap["repro_job_seconds"][""]["count"] == 2
        assert snap["repro_stage_seconds"]["stage=simplify"]["count"] == 2

    def test_hit_and_dedup_elapsed_are_real_wall_clock(self, tmp_path):
        service = CompilationService(cache=open_cache(str(tmp_path / "cache")))
        (job,) = tiny_jobs(1)
        twin = CompilationJob("twin", job.terms(), job.options)
        events = []
        service.compile_many([job], workers=1, executor="serial")
        service.compile_many(
            [job, twin], workers=1, executor="serial", progress=events.append
        )
        outcomes = {event.name: event for event in events}
        assert outcomes[job.name].outcome == "hit"
        assert outcomes["twin"].outcome in ("hit", "dedup")
        # A warm job is not free: its lookup+decode wall clock is reported,
        # never the literal 0.0 the old code path emitted.
        assert outcomes[job.name].elapsed > 0.0
        assert outcomes["twin"].elapsed > 0.0

    def test_batch_summary_log_line(self, tmp_path, caplog):
        service = CompilationService(cache=open_cache(str(tmp_path / "cache")))
        with caplog.at_level(logging.INFO, logger="repro.service.service"):
            service.compile_many(tiny_jobs(2), workers=1, executor="serial")
        summary = [
            record for record in caplog.records if "batch done" in record.message
        ]
        assert len(summary) == 1
        assert "2 jobs" in summary[0].getMessage()


class TestExecutorCounters:
    def test_serial_timeout_and_retry_counters(self, tmp_path):
        marker = tmp_path / "attempt.marker"

        def flaky(payload):
            if not marker.exists():
                marker.write_text("1", encoding="utf-8")
                time.sleep(30)
            return {"index": payload["index"], "status": "ok"}

        raws = SerialExecutor(timeout=0.3, retries=1).run(
            [{"index": 0}], runner=flaky
        )
        assert raws[0]["status"] == "ok" and raws[0]["attempts"] == 2
        snap = metrics.REGISTRY.snapshot()
        assert snap["repro_executor_timeouts_total"]["executor=serial"] == 1.0
        assert snap["repro_executor_retries_total"]["executor=serial"] == 1.0


class TestCrossProcessSpans:
    @needs_fork
    def test_process_pool_batch_yields_one_coherent_tree(self, tmp_path):
        sink = trace.RecordingSink()
        trace.set_sink(sink)
        service = CompilationService(
            cache=open_cache(str(tmp_path / "cache")),
            executor=ProcessExecutor(max_workers=2, warmup=False),
        )
        results = service.compile_many(tiny_jobs(2), workers=2)
        trace.set_sink(None)
        assert all(result.ok for result in results)

        events = sink.events
        by_id = {event["span_id"]: event for event in events}
        names = [event["name"] for event in events]
        (root,) = [e for e in events if e["parent_id"] not in by_id]
        assert root["name"] == "compile_many"

        jobs = [e for e in events if e["name"] == "job"]
        compiles = [e for e in events if e["name"] == "compile"]
        stages = [e for e in events if e["name"].startswith("stage:")]
        assert len(jobs) == 2 and len(compiles) == 2
        assert "stage:simplify" in names and "stage:emit" in names
        parent_pid = os.getpid()
        for job_event in jobs:
            assert job_event["pid"] == parent_pid
            assert by_id[job_event["parent_id"]] is root
            assert job_event["attrs"]["outcome"] == "miss"
            assert job_event["attrs"]["attempts"] == 1
        for compile_event in compiles:
            # Compiled in a forked worker, yet parented into this process's
            # job span and sharing its trace ID.
            assert compile_event["pid"] != parent_pid
            parent = by_id[compile_event["parent_id"]]
            assert parent["name"] == "job"
            assert compile_event["trace_id"] == parent["trace_id"]
        for stage_event in stages:
            assert by_id[stage_event["parent_id"]]["name"] == "compile"

    def test_serial_batch_tree_without_fork(self, tmp_path):
        sink = trace.RecordingSink()
        trace.set_sink(sink)
        service = CompilationService(cache=open_cache(str(tmp_path / "cache")))
        service.compile_many(tiny_jobs(1), workers=1, executor="serial")
        trace.set_sink(None)
        names = [event["name"] for event in sink.events]
        assert names[-1] == "compile_many"
        assert "job" in names and "compile" in names
        assert any(name == "stage:simplify" for name in names)

    def test_no_sink_means_no_payload_trace_context(self, tmp_path):
        # With tracing off, batches must not ship trace contexts to
        # workers (zero-cost guarantee, and forked children skip the
        # recording path entirely).
        service = CompilationService(cache=open_cache(str(tmp_path / "cache")))
        results = service.compile_many(tiny_jobs(1), workers=1, executor="serial")
        assert results[0].ok
        assert trace.get_sink() is None


class TestPruneObservability:
    def test_prune_increments_eviction_counters_and_logs(self, tmp_path, caplog):
        store = ShardedDiskCacheStore(tmp_path / "cache")
        for index in range(3):
            store.put(f"{index:02d}abcdef", {"payload": "x" * 64})
        with caplog.at_level(logging.INFO, logger="repro.service.shardcache"):
            report = store.prune(max_bytes=0)
        assert report.removed_entries == 3
        snap = metrics.REGISTRY.snapshot()
        assert snap["repro_cache_evictions_total"][""] == 3.0
        assert snap["repro_cache_evicted_bytes_total"][""] == report.removed_bytes
        pruned = [r for r in caplog.records if "pruned cache" in r.message]
        assert len(pruned) == 1

    def test_empty_prune_stays_quiet_on_counters(self, tmp_path):
        store = ShardedDiskCacheStore(tmp_path / "cache")
        report = store.prune(max_bytes=10**9)
        assert report.removed_entries == 0
        snap = metrics.REGISTRY.snapshot()
        assert "repro_cache_evictions_total" not in snap


class TestBatchTraceFile:
    def test_cli_batch_trace_out_writes_parseable_tree(self, tmp_path, capsys):
        import json

        from repro.service.cli import main as cli_main

        trace_path = tmp_path / "trace.jsonl"
        code = cli_main(
            [
                "batch", "LiH_frz_BK",
                "--cache-dir", str(tmp_path / "cache"),
                "--workers", "1",
                "--quiet",
                "--trace-out", str(trace_path),
                "--metrics-out", str(tmp_path / "metrics.prom"),
            ]
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        ]
        assert [e["name"] for e in events if e["name"] == "compile_many"]
        # Tracing was torn down after the batch...
        assert trace.get_sink() is None
        # ...and the Prometheus text file carries the batch's counters.
        text = Path(tmp_path / "metrics.prom").read_text(encoding="utf-8")
        assert 'repro_jobs_total{outcome="miss"} 1' in text
