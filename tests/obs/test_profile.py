"""Per-stage profile aggregation and the ``phoenix profile`` command."""

import json

import pytest

from repro.obs.profile import (
    aggregate_stage_timings,
    format_stage_table,
    stage_timings_from_summaries,
    top_stage,
)
from repro.service.cli import main as cli_main

#: Two synthetic jobs with fixed stage timings — every derived number in
#: the golden table below is computable by hand from these.
TWO_JOB_TIMINGS = [
    {"simplify": 0.3, "emit": 0.1},
    {"simplify": 0.5, "emit": 0.1},
]

GOLDEN_TABLE = "\n".join(
    [
        "stage     count   total     mean      p50      p95  share",
        "--------  -----  ------  -------  -------  -------  -----",
        "simplify      2  0.800s  0.4000s  0.4000s  0.4900s  80.0%",
        "emit          2  0.200s  0.1000s  0.1000s  0.1000s  20.0%",
        "hottest stage: simplify (80.0% of stage time)",
    ]
)


class TestAggregate:
    def test_two_job_aggregate_by_hand(self):
        aggregates = aggregate_stage_timings(TWO_JOB_TIMINGS)
        simplify = aggregates["simplify"]
        assert simplify["count"] == 2
        assert simplify["total_seconds"] == pytest.approx(0.8)
        assert simplify["mean_seconds"] == pytest.approx(0.4)
        assert simplify["p50_seconds"] == pytest.approx(0.4)
        assert simplify["p95_seconds"] == pytest.approx(0.49)
        assert simplify["max_seconds"] == 0.5
        assert simplify["share"] == pytest.approx(0.8)
        assert aggregates["emit"]["share"] == pytest.approx(0.2)

    def test_stage_missing_from_one_job_still_counts(self):
        aggregates = aggregate_stage_timings(
            [{"route": 0.2}, {"simplify": 0.8}]
        )
        assert aggregates["route"]["count"] == 1
        assert top_stage(aggregates) == "simplify"

    def test_empty_input(self):
        assert aggregate_stage_timings([]) == {}
        assert top_stage({}) is None
        assert "no stage timings recorded" in format_stage_table({})


class TestGoldenTable:
    def test_two_job_table_renders_exactly(self):
        aggregates = aggregate_stage_timings(TWO_JOB_TIMINGS)
        assert format_stage_table(aggregates) == GOLDEN_TABLE

    def test_title_prepended(self):
        aggregates = aggregate_stage_timings(TWO_JOB_TIMINGS)
        table = format_stage_table(aggregates, title="my suite")
        assert table.splitlines()[0] == "my suite"


class TestStageTimingsFromSummaries:
    def test_extracts_and_skips_failed_jobs(self):
        summaries = [
            {"name": "a", "stage_timings": {"emit": 0.5}},
            {"name": "failed", "error": "boom"},
            {"name": "b", "stage_timings": {"emit": 0.25}},
        ]
        assert stage_timings_from_summaries(summaries) == [
            {"emit": 0.5},
            {"emit": 0.25},
        ]


class TestProfileCommand:
    def test_input_mode_renders_golden_table(self, tmp_path, capsys):
        batch = [
            {"name": "job-1", "stage_timings": TWO_JOB_TIMINGS[0]},
            {"name": "job-2", "stage_timings": TWO_JOB_TIMINGS[1]},
        ]
        path = tmp_path / "results.json"
        path.write_text(json.dumps(batch), encoding="utf-8")
        assert cli_main(["profile", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert out == f"per-stage profile over {path}\n{GOLDEN_TABLE}\n"

    def test_input_mode_json_format(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        path.write_text(
            json.dumps([{"stage_timings": {"emit": 0.1}}]), encoding="utf-8"
        )
        assert cli_main(["profile", "--input", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["emit"]["count"] == 1

    def test_input_without_timings_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("[]", encoding="utf-8")
        assert cli_main(["profile", "--input", str(path)]) == 2
        assert "no stage_timings" in capsys.readouterr().err

    def test_run_mode_compiles_and_names_hot_stage(self, capsys):
        code = cli_main(
            ["profile", "--workload", "tfim:n=5,lattice=chain", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-stage profile over 1 workload(s)" in out
        assert "hottest stage:" in out
        assert "simplify" in out
