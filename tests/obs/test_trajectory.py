"""The bench-trajectory renderer over synthetic report histories."""

import json

import pytest

from benchmarks.trajectory import (
    load_reports,
    main,
    render_json,
    render_markdown,
    stage_history,
    trajectory_rows,
)


def synthetic_report(generated_at, serial_jps, speedup=2.0, p50_order=0.02):
    return {
        "format": "phoenix-bench-service-1",
        "suite_version": 1,
        "generated_at": generated_at,
        "serial": {"jobs_per_second": serial_jps, "jobs": 16, "errors": {}},
        "process": {
            "jobs_per_second": serial_jps * speedup,
            "workers": 4,
            "effective_workers": 4,
        },
        "warm": {"jobs_per_second": serial_jps * 10, "hit_rate": 1.0},
        "speedup": speedup,
        "equivalence": {"byte_identical": True, "mismatches": []},
        "stage_timings": {
            "order": {"p50_seconds": p50_order, "mean_seconds": p50_order},
            "emit": {"p50_seconds": 0.001, "mean_seconds": 0.001},
        },
        "environment": {"cpu_count": 4, "python": "3.12.0"},
    }


@pytest.fixture
def history_dir(tmp_path):
    # Written out of order on purpose: ordering must come from
    # generated_at, not from filename or write sequence.
    reports = [
        ("b.json", synthetic_report("2026-08-04T00:00:00+00:00", 2.0)),
        ("c.json", synthetic_report("2026-08-07T00:00:00+00:00", 3.0, p50_order=0.01)),
        ("a.json", synthetic_report("2026-08-01T00:00:00+00:00", 1.0)),
    ]
    for name, report in reports:
        (tmp_path / name).write_text(json.dumps(report), encoding="utf-8")
    # Distractors that must be skipped, not crash the scan.
    (tmp_path / "notes.json").write_text('{"format": "other"}', encoding="utf-8")
    (tmp_path / "broken.json").write_text("{not json", encoding="utf-8")
    return tmp_path


class TestLoadReports:
    def test_orders_by_generated_at_and_skips_foreign_files(self, history_dir):
        reports = load_reports(history_dir)
        assert [r["generated_at"][:10] for r in reports] == [
            "2026-08-01", "2026-08-04", "2026-08-07",
        ]

    def test_mtime_fallback_for_legacy_reports(self, tmp_path):
        import os

        legacy = synthetic_report(None, 1.0)
        del legacy["generated_at"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy), encoding="utf-8")
        os.utime(path, (1000.0, 1000.0))
        reports = load_reports(tmp_path)
        assert len(reports) == 1
        assert reports[0]["_order_key"] == 1000.0

    def test_empty_directory(self, tmp_path):
        assert load_reports(tmp_path) == []
        assert "No bench reports found" in render_markdown([])


class TestRows:
    def test_rows_carry_the_trajectory_columns(self, history_dir):
        rows = trajectory_rows(load_reports(history_dir))
        assert [row["serial_jobs_per_second"] for row in rows] == [1.0, 2.0, 3.0]
        first = rows[0]
        assert first["speedup"] == 2.0
        assert first["warm_hit_rate"] == 1.0
        assert first["byte_identical"] is True
        assert first["effective_workers"] == 4
        assert first["cpu_count"] == 4

    def test_remote_tier_columns(self, tmp_path):
        report = synthetic_report("2026-08-08T00:00:00+00:00", 1.0)
        report["warm"]["remote_hit_rate"] = 0.75
        report["cache"] = {
            "spec": "disk:.cache,http://cachehost:8078",
            "warm_remote": {"hit_rate": 0.75, "io_errors": 2},
        }
        (tmp_path / "r.json").write_text(json.dumps(report), encoding="utf-8")
        rows = trajectory_rows(load_reports(tmp_path))
        assert rows[0]["remote_hit_rate"] == 0.75
        assert rows[0]["remote_io_errors"] == 2
        assert rows[0]["cache_spec"] == "disk:.cache,http://cachehost:8078"
        assert "| 75% |" in render_markdown(load_reports(tmp_path))

    def test_stage_history_tracks_medians_per_report(self, history_dir):
        history = stage_history(load_reports(history_dir))
        assert history["order"] == [0.02, 0.02, 0.01]
        assert history["emit"] == [0.001, 0.001, 0.001]


class TestRendering:
    def test_markdown_has_summary_and_stage_tables(self, history_dir):
        text = render_markdown(load_reports(history_dir))
        assert "# Bench trajectory" in text
        assert "3 report(s), oldest first." in text
        # Pre-remote-tier reports render "—" in the remote hit-rate column.
        assert "| 2026-08-01 00:00:00 | 1.00 | 2.00 | 2.00x | 100% | — | yes | 4/4 | 4 |" in text
        assert "## Per-stage median seconds" in text
        assert "| order | 0.0200 | 0.0200 | 0.0100 |" in text

    def test_json_rendering_round_trips(self, history_dir):
        payload = json.loads(render_json(load_reports(history_dir)))
        assert payload["reports"] == 3
        assert len(payload["trajectory"]) == 3
        assert payload["stage_history"]["order"] == [0.02, 0.02, 0.01]


class TestMain:
    def test_writes_output_file(self, history_dir, tmp_path, capsys):
        out = tmp_path / "trajectory.md"
        code = main([str(history_dir), "--format", "markdown", "-o", str(out)])
        assert code == 0
        assert "3 bench report(s)" in capsys.readouterr().err
        assert "# Bench trajectory" in out.read_text(encoding="utf-8")

    def test_missing_directory_is_an_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope")])
        assert code == 1
        assert "not a directory" in capsys.readouterr().err

    def test_stdout_json(self, history_dir, capsys):
        assert main([str(history_dir), "--format", "json"]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["reports"] == 3
