"""Shared isolation for the observability tests.

Tracing and metrics are process-global by design (that is what makes the
instrumentation zero-configuration at call sites), so every test here
starts from a clean slate: no sink installed, an empty metrics registry,
and both restored afterwards no matter how the test exits.
"""

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_observability():
    previous = trace.set_sink(None)
    metrics.REGISTRY.reset()
    yield
    trace.set_sink(previous)
    metrics.REGISTRY.reset()
