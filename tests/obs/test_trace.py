"""Span tracing: nesting, threads, sinks, and the zero-cost guarantee."""

import io
import json
import threading

from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    JsonlSink,
    RecordingSink,
    current_context,
    emit_events,
    set_sink,
    sink_override,
    span,
    start_span,
    traced,
)


class TestZeroCostWhenDisabled:
    def test_span_returns_shared_noop(self):
        first = span("anything", qubits=10)
        second = span("other")
        assert first is NOOP_SPAN and second is NOOP_SPAN
        assert not first  # falsy, so callers can gate extra work on it

    def test_noop_span_absorbs_the_full_api(self):
        with span("outer") as outer:
            outer.set("key", 1).update(more=2)
            assert outer.context() is None
        assert start_span("detached").context() is None
        assert current_context() is None

    def test_decorated_function_runs_plain(self):
        @traced()
        def double(value):
            return value * 2

        assert double(21) == 42


class TestNestingAndAttributes:
    def test_parent_ids_follow_lexical_nesting(self):
        sink = RecordingSink()
        set_sink(sink)
        with span("outer", qubits=5) as outer:
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        events = {event["name"]: event for event in sink.events}
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["outer"]["parent_id"] is None
        assert events["outer"]["attrs"]["qubits"] == 5
        assert events["inner"]["duration"] <= events["outer"]["duration"]

    def test_exception_marks_status_error_and_pops_stack(self):
        sink = RecordingSink()
        set_sink(sink)
        try:
            with span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert sink.events[0]["status"] == "error"
        assert current_context() is None  # stack fully unwound

    def test_each_thread_has_its_own_stack(self):
        sink = RecordingSink()
        set_sink(sink)
        barrier = threading.Barrier(2)

        def work(label):
            with span(f"outer-{label}"):
                barrier.wait(timeout=10)  # both outers open concurrently
                with span(f"inner-{label}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(label,)) for label in "ab"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = {event["name"]: event for event in sink.events}
        for label in "ab":
            inner, outer = events[f"inner-{label}"], events[f"outer-{label}"]
            assert inner["parent_id"] == outer["span_id"]
            assert inner["trace_id"] == outer["trace_id"]
        assert events["outer-a"]["trace_id"] != events["outer-b"]["trace_id"]

    def test_detached_span_parents_explicit_children(self):
        sink = RecordingSink()
        set_sink(sink)
        job = start_span("job", name="j1")
        with span("attempt", parent=job.context()) as attempt:
            assert attempt.parent_id == job.span_id
        job.update(outcome="ok").end()
        events = {event["name"]: event for event in sink.events}
        assert events["attempt"]["parent_id"] == events["job"]["span_id"]
        assert events["job"]["attrs"]["outcome"] == "ok"


class TestSinks:
    def test_jsonl_sink_writes_one_object_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)
        with span("outer"):
            with span("inner"):
                pass
        set_sink(None)
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["inner", "outer"]

    def test_jsonl_sink_accepts_open_stream(self):
        stream = io.StringIO()
        set_sink(JsonlSink(stream))
        with span("streamed"):
            pass
        assert json.loads(stream.getvalue())["name"] == "streamed"

    def test_sink_override_wins_for_the_thread(self):
        outer_sink, inner_sink = RecordingSink(), RecordingSink()
        set_sink(outer_sink)
        with sink_override(inner_sink):
            with span("captured"):
                pass
        with span("global"):
            pass
        assert [event["name"] for event in inner_sink.events] == ["captured"]
        assert [event["name"] for event in outer_sink.events] == ["global"]

    def test_emit_events_replays_worker_spans(self):
        sink = RecordingSink()
        set_sink(sink)
        emit_events([{"name": "replayed", "span_id": "x-1"}])
        assert sink.events == [{"name": "replayed", "span_id": "x-1"}]

    def test_crashing_sink_never_breaks_the_workload(self):
        def explode(event):
            raise RuntimeError("sink down")

        set_sink(explode)
        with span("survives"):
            pass  # no exception may escape


class TestSpanIds:
    def test_ids_embed_pid_and_are_unique(self):
        import os

        set_sink(RecordingSink())
        spans = [start_span("s") for _ in range(100)]
        ids = {live.span_id for live in spans}
        assert len(ids) == 100
        assert all(sid.startswith(f"{os.getpid():x}-") for sid in ids)
        for live in spans:
            live.end()

    def test_traced_decorator_records_qualname(self):
        sink = RecordingSink()
        set_sink(sink)

        @traced(flavor="test")
        def unit():
            return 1

        unit()
        (event,) = sink.events
        assert event["name"].endswith("unit")
        assert event["attrs"] == {"flavor": "test"}

    def test_context_matches_innermost_span(self):
        set_sink(RecordingSink())
        with span("outer"):
            with span("inner") as inner:
                assert current_context() == {
                    "trace_id": inner.trace_id,
                    "span_id": inner.span_id,
                }
        assert trace.current_context() is None
