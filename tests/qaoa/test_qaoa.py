"""Tests for QAOA workload generation."""

import networkx as nx
import pytest

from repro.qaoa.ansatz import maxcut_hamiltonian, qaoa_benchmark_program, qaoa_program
from repro.qaoa.graphs import QAOA_BENCHMARKS, qaoa_benchmark_graph, random_regular_graph


class TestGraphs:
    def test_regular_graph_degrees(self):
        graph = random_regular_graph(3, 10, seed=1)
        assert all(d == 3 for _, d in graph.degree())
        assert nx.is_connected(graph)

    def test_odd_degree_times_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(3, 7)

    def test_benchmark_graphs_match_table_iv_sizes(self):
        expected_paulis = {"Rand-16": 32, "Rand-20": 40, "Rand-24": 48,
                           "Reg3-16": 24, "Reg3-20": 30, "Reg3-24": 36}
        for name, count in expected_paulis.items():
            graph = qaoa_benchmark_graph(name)
            assert graph.number_of_edges() == count
            assert graph.number_of_nodes() == QAOA_BENCHMARKS[name][1]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            qaoa_benchmark_graph("Rand-99")


class TestPrograms:
    def test_maxcut_hamiltonian_terms(self):
        graph = nx.path_graph(4)
        ham = maxcut_hamiltonian(graph)
        assert len(ham) == 3
        assert all(string.weight() == 2 for _, string in ham)

    def test_qaoa_program_weights(self):
        graph = nx.cycle_graph(5)
        terms = qaoa_program(graph, gamma=0.4)
        assert len(terms) == 5
        assert all(t.weight() == 2 for t in terms)
        assert all(t.coefficient == pytest.approx(0.4) for t in terms)

    def test_mixer_layer_included_when_requested(self):
        graph = nx.cycle_graph(4)
        terms = qaoa_program(graph, include_mixer=True)
        assert sum(1 for t in terms if t.weight() == 1) == 4

    def test_multiple_layers(self):
        graph = nx.cycle_graph(4)
        assert len(qaoa_program(graph, layers=3)) == 12

    def test_benchmark_program(self):
        terms = qaoa_benchmark_program("Reg3-16")
        assert len(terms) == 24
        assert terms[0].num_qubits == 16
