"""Property tests for every registered workload family.

Each family must behave like a content-addressed generator: the same seed
reproduces the exact same terms and fingerprint, a different seed changes
the fingerprint, all coefficients are real finite rotation angles
(Hermitian Hamiltonian content), and qubit counts / term supports stay
inside the bounds the parameters declare.  The suite iterates the live
registry, so a newly registered family is automatically held to the same
contract.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads.registry import (
    get_workload_family,
    list_workloads,
    workload_from_spec,
    workload_names,
)

FAMILY_NAMES = workload_names()

#: Expected qubit count as a function of the (complete) parameter set.
_EXPECTED_QUBITS = {
    "heisenberg": lambda p: p["rows"] * p["cols"] if p["lattice"] == "grid" else p["n"],
    "xxz": lambda p: p["rows"] * p["cols"] if p["lattice"] == "grid" else p["n"],
    "tfim": lambda p: p["rows"] * p["cols"] if p["lattice"] == "grid" else p["n"],
    "hubbard": lambda p: 2 * p["sites"],
    "kpauli": lambda p: p["n"],
    "maxcut": lambda p: p["n"],
    "uccsd": lambda p: p["orbitals"],
    "stress": lambda p: 2 * p["scale"],
}


def _build_small(family_name: str, seed: int):
    family = get_workload_family(family_name)
    return family.build(**{**family.small_params, "seed": seed})


pytestmark = pytest.mark.fuzz


class TestGeneratorProperties:
    def test_catalogue_has_at_least_eight_families(self):
        assert len(FAMILY_NAMES) >= 8
        assert {"heisenberg", "xxz", "tfim", "hubbard", "kpauli",
                "maxcut", "uccsd", "stress"} <= set(FAMILY_NAMES)

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_same_seed_reproduces_terms_and_fingerprint(self, family_name):
        first = _build_small(family_name, seed=5)
        second = _build_small(family_name, seed=5)
        assert first.fingerprint() == second.fingerprint()
        assert first.num_terms == second.num_terms
        for a, b in zip(first.terms, second.terms):
            assert a.to_label() == b.to_label()
            assert a.coefficient == b.coefficient

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_different_seed_changes_fingerprint(self, family_name):
        assert (
            _build_small(family_name, seed=5).fingerprint()
            != _build_small(family_name, seed=6).fingerprint()
        )

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_coefficients_are_real_finite_rotation_angles(self, family_name):
        workload = _build_small(family_name, seed=5)
        for term in workload.terms:
            assert isinstance(term.coefficient, float)
            assert math.isfinite(term.coefficient)
            assert term.coefficient != 0.0

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_qubit_count_and_supports_within_declared_bounds(self, family_name):
        family = get_workload_family(family_name)
        params = {**family.defaults, **family.small_params, "seed": 5}
        workload = family.build(**{**family.small_params, "seed": 5})
        assert workload.num_qubits == _EXPECTED_QUBITS[family_name](params)
        for term in workload.terms:
            assert term.num_qubits == workload.num_qubits
            support = term.support()
            assert len(support) >= 1  # no identity exponentiations
            assert all(0 <= q < workload.num_qubits for q in support)

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_spec_string_round_trips(self, family_name):
        workload = _build_small(family_name, seed=5)
        rebuilt = workload_from_spec(workload.spec)
        assert rebuilt.fingerprint() == workload.fingerprint()
        assert rebuilt.spec == workload.spec

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_params_carry_the_complete_builder_signature(self, family_name):
        """Workload params must cover every default, so provenance alone
        rebuilds the instance (the serialization layer relies on this)."""
        family = get_workload_family(family_name)
        workload = _build_small(family_name, seed=5)
        assert set(workload.params) == set(family.defaults)
        assert workload.seed == 5


class TestFamilySpecifics:
    def test_kpauli_terms_are_exactly_k_local(self):
        workload = workload_from_spec("kpauli:n=6,num_terms=12,k=3,seed=9")
        assert all(term.weight() == 3 for term in workload.terms)
        assert workload.num_terms == 12

    def test_lattice_variants_build_and_suggest_matching_topologies(self):
        chain = workload_from_spec("heisenberg:n=6,lattice=chain")
        ring = workload_from_spec("heisenberg:n=6,lattice=ring")
        grid = workload_from_spec("heisenberg:n=6,lattice=grid,rows=2,cols=3")
        assert chain.suggested_topology == "line-6"
        assert ring.suggested_topology == "ring-6"
        assert grid.suggested_topology == "grid-2x3"
        # A ring has one more bond than a chain: one more XX/YY/ZZ triple.
        assert ring.num_terms == chain.num_terms + 3

    def test_degenerate_lattices_are_rejected(self):
        with pytest.raises(ValueError, match="n == rows \\* cols"):
            workload_from_spec("tfim:n=16,lattice=grid,rows=2,cols=4")
        with pytest.raises(ValueError, match="ring lattice needs n >= 3"):
            workload_from_spec("tfim:n=2,lattice=ring")
        with pytest.raises(ValueError, match="chain lattice needs n >= 2"):
            workload_from_spec("heisenberg:n=1")

    def test_maxcut_graph_kinds_and_weights(self):
        for kind in ("reg3", "regular", "powerlaw", "erdos"):
            workload = workload_from_spec(f"maxcut:n=8,graph={kind},seed=4")
            assert workload.max_weight() == 2
        unweighted = workload_from_spec("maxcut:n=8,weighted=false,seed=4")
        weighted = workload_from_spec("maxcut:n=8,weighted=true,seed=4")
        assert len({term.coefficient for term in unweighted.terms}) == 1
        assert len({term.coefficient for term in weighted.terms}) > 1

    def test_uccsd_molecule_parameter_matches_catalogue(self):
        workload = workload_from_spec("uccsd:molecule=LiH_frz,encoding=bk")
        assert workload.num_qubits == 10
        from repro.chemistry.molecules import benchmark_program

        reference = benchmark_program("LiH_frz_BK")
        assert [t.to_label() for t in workload.terms] == [
            t.to_label() for t in reference
        ]

    def test_stress_scales_linearly_with_the_knob(self):
        small = workload_from_spec("stress:scale=2,depth=1")
        big = workload_from_spec("stress:scale=4,depth=1")
        assert big.num_qubits == 2 * small.num_qubits
        assert big.num_terms > small.num_terms
        deep = workload_from_spec("stress:scale=2,depth=3")
        assert deep.num_terms == 3 * small.num_terms

    def test_hubbard_encodings_agree_on_spectrum_content(self):
        """JW and BK encode the same Hamiltonian: same qubit count and the
        same multiset of |coefficients| (the encodings permute/relabel
        strings but preserve the operator)."""
        jw = workload_from_spec("hubbard:sites=2,encoding=jw,seed=3")
        bk = workload_from_spec("hubbard:sites=2,encoding=bk,seed=3")
        assert jw.num_qubits == bk.num_qubits == 4
        assert sorted(round(abs(t.coefficient), 12) for t in jw.terms) == sorted(
            round(abs(t.coefficient), 12) for t in bk.terms
        )

    def test_disorder_zero_is_seed_invariant_content(self):
        """With disorder off, spin-lattice terms are seed-independent even
        though the fingerprint (which hashes the seed) still differs."""
        a = workload_from_spec("tfim:n=6,disorder=0.0,seed=1")
        b = workload_from_spec("tfim:n=6,disorder=0.0,seed=2")
        assert [t.coefficient for t in a.terms] == [t.coefficient for t in b.terms]
        assert a.fingerprint() != b.fingerprint()


class TestWorkloadValue:
    def test_to_terms_returns_fresh_copies(self):
        workload = _build_small("tfim", seed=5)
        terms = workload.to_terms()
        terms[0].coefficient = 123.0
        assert workload.terms[0].coefficient != 123.0

    def test_numpy_param_values_canonicalise(self):
        """Params arriving as numpy scalars must not split fingerprints."""
        plain = workload_from_spec("kpauli:n=6,num_terms=8,seed=2")
        numpyish = get_workload_family("kpauli").build(
            n=np.int64(6), num_terms=np.int64(8), seed=np.int64(2)
        )
        assert numpyish.fingerprint() == plain.fingerprint()

        plain_bool = workload_from_spec("maxcut:n=6,weighted=true,seed=2")
        numpy_bool = get_workload_family("maxcut").build(
            n=6, weighted=np.bool_(True), seed=2
        )
        assert numpy_bool.fingerprint() == plain_bool.fingerprint()
        # And the spec the workload prints still rebuilds it exactly.
        assert (
            workload_from_spec(numpy_bool.spec).fingerprint()
            == numpy_bool.fingerprint()
        )
