"""Tests for the workload registry, the spec grammar, serialization of
workload metadata, and the composition of workload fingerprints with
compiler config fingerprints into service cache keys."""

from __future__ import annotations

import pytest

from repro.paulis.pauli import PauliTerm
from repro.serialize.results import (
    result_from_dict,
    result_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads import (
    Workload,
    build_workload,
    format_workload_spec,
    get_workload_family,
    parse_workload_spec,
    register_workload,
    unregister_workload,
    workload_from_spec,
    workload_names,
)


def _toy_builder(n, seed):
    terms = [PauliTerm.from_label("Z" * n, 0.1 + seed)]
    return Workload("toy", {"n": n, "seed": seed}, terms)


@pytest.fixture
def toy_family():
    register_workload(
        "toy", _toy_builder, description="test-only", defaults={"n": 3, "seed": 0}
    )
    yield
    unregister_workload("toy")


class TestRegistry:
    def test_runtime_registration_and_unregistration(self, toy_family):
        assert "toy" in workload_names()
        workload = build_workload("toy", n=4)
        assert workload.num_qubits == 4
        assert workload.family == "toy"
        assert unregister_workload("toy")
        register_workload(
            "toy", _toy_builder, description="test-only", defaults={"n": 3, "seed": 0}
        )

    def test_duplicate_registration_raises(self, toy_family):
        def other_builder(n, seed):
            return _toy_builder(n, seed)

        with pytest.raises(ValueError, match="already registered"):
            register_workload("toy", other_builder, defaults={"n": 3, "seed": 0})
        # Same builder re-registration is idempotent; overwrite swaps it.
        register_workload("toy", _toy_builder, defaults={"n": 3, "seed": 0})
        register_workload(
            "toy", other_builder, defaults={"n": 3, "seed": 0}, overwrite=True
        )
        assert get_workload_family("toy").builder is other_builder

    def test_builder_family_mismatch_is_caught(self):
        def lying_builder(seed):
            return Workload("not-liar", {"seed": seed}, [PauliTerm.from_label("X", 0.1)])

        register_workload("liar", lying_builder, defaults={"seed": 0})
        try:
            with pytest.raises(RuntimeError, match="returned family"):
                build_workload("liar")
        finally:
            unregister_workload("liar")

    def test_unknown_family_raises_with_candidates(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            build_workload("no-such-family")

    def test_non_integer_seeds_are_rejected_before_any_rng_use(self):
        # 'seed=none' parses to None in the spec grammar; an entropy-seeded
        # RNG would silently break the same-seed-same-fingerprint contract.
        with pytest.raises(ValueError, match="integer seed"):
            workload_from_spec("tfim:n=6,seed=none")
        with pytest.raises(ValueError, match="integer seed"):
            build_workload("kpauli", seed=1.5)

    def test_unsatisfiable_graph_sampling_is_a_user_error(self):
        # ValueError (not RuntimeError) so the CLI reports a one-liner.
        with pytest.raises(ValueError, match="connected"):
            workload_from_spec("maxcut:n=8,graph=erdos,p=0.001")

    def test_small_instances_stay_verifiable(self):
        for name in workload_names():
            assert get_workload_family(name).small().num_qubits <= 8


class TestSpecGrammar:
    def test_parse_value_types(self):
        family, params = parse_workload_spec(
            "fam:a=3,b=0.5,c=true,d=false,e=text,f=none"
        )
        assert family == "fam"
        assert params == {
            "a": 3, "b": 0.5, "c": True, "d": False, "e": "text", "f": None,
        }
        assert isinstance(params["a"], int)
        assert isinstance(params["b"], float)

    def test_bare_family_name_means_defaults(self):
        family, params = parse_workload_spec("tfim")
        assert family == "tfim" and params == {}
        assert workload_from_spec("tfim").family == "tfim"

    def test_malformed_specs_raise(self):
        with pytest.raises(ValueError, match="empty workload spec"):
            parse_workload_spec("   ")
        with pytest.raises(ValueError, match="key=val"):
            parse_workload_spec("fam:novalue")
        with pytest.raises(ValueError, match="key=val"):
            parse_workload_spec("fam:=3")

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            workload_from_spec("tfim:bogus=1")

    def test_format_round_trips_through_parse(self):
        spec = format_workload_spec("tfim", {"n": 6, "disorder": 0.0, "seed": 2})
        family, params = parse_workload_spec(spec)
        assert family == "tfim"
        assert params["n"] == 6 and params["disorder"] == 0.0 and params["seed"] == 2


class TestWorkloadSerialization:
    def test_metadata_round_trip_regenerates_and_verifies(self):
        workload = workload_from_spec("maxcut:n=6,weighted=true,seed=8")
        payload = workload_to_dict(workload)
        rebuilt = workload_from_dict(payload)
        assert rebuilt.fingerprint() == workload.fingerprint()
        assert rebuilt.spec == workload.spec
        assert [t.to_label() for t in rebuilt.terms] == [
            t.to_label() for t in workload.terms
        ]

    def test_tampered_payload_fails_fingerprint_verification(self):
        workload = workload_from_spec("kpauli:n=5,num_terms=8,seed=1")
        payload = workload_to_dict(workload)
        payload["params"]["seed"] = 2  # drifted provenance
        with pytest.raises(ValueError, match="fingerprint"):
            workload_from_dict(payload)

    def test_result_payload_embeds_workload_metadata(self):
        from repro.core.compiler import PhoenixCompiler

        workload = workload_from_spec("stress:scale=2,depth=1")
        result = PhoenixCompiler().compile(workload.to_terms())
        payload = result_to_dict(result, workload=workload)
        assert payload["workload"]["family"] == "stress"
        assert payload["workload"]["fingerprint"] == workload.fingerprint()
        # Results still deserialize with the extra provenance present.
        round_tripped = result_from_dict(payload)
        assert round_tripped.metrics.cx_count == result.metrics.cx_count


class TestCacheKeyComposition:
    def test_workload_cache_key_matches_service_job_key(self):
        from repro.service.registry import CompilerOptions
        from repro.service.service import CompilationJob, CompilationService

        workload = workload_from_spec("heisenberg:n=6,seed=4")
        options = CompilerOptions(compiler="phoenix")
        service = CompilationService()
        job = CompilationJob("wl", workload.to_terms(), options)
        assert service.job_key(job) == workload.cache_key(options.fingerprint())

    def test_order_sensitive_compilers_use_sequence_keys(self):
        from repro.service.registry import CompilerOptions
        from repro.service.service import CompilationJob, CompilationService

        workload = workload_from_spec("tfim:n=5,seed=4")
        options = CompilerOptions(compiler="naive")
        service = CompilationService()
        job = CompilationJob("wl", workload.to_terms(), options)
        assert service.job_key(job) == workload.cache_key(
            options.fingerprint(), canonical=False
        )

    def test_generated_suites_hit_the_cache_on_rerun(self):
        from repro.service.service import CompilationService

        workload = workload_from_spec("xxz:n=5,seed=2")
        service = CompilationService()
        first = service.compile(workload.to_terms(), name="first")
        second = service.compile(workload.to_terms(), name="second")
        assert first.ok and second.ok
        assert not first.cached and second.cached
        assert first.key == second.key == workload.cache_key(
            first.key.rsplit("-", 1)[1]
        )
