"""Tests for the baseline compilers."""

import numpy as np
import pytest

from repro.baselines import (
    NaiveCompiler,
    PaulihedralCompiler,
    TetrisCompiler,
    TketLikeCompiler,
    TwoQANCompiler,
)
from repro.baselines.tket_like import partition_commuting_runs
from repro.hardware.topology import Topology
from repro.paulis.pauli import PauliTerm
from repro.simulation.evolution import terms_unitary
from repro.simulation.unitary import circuit_unitary

LOGICAL_COMPILERS = [NaiveCompiler, PaulihedralCompiler, TetrisCompiler, TketLikeCompiler]


@pytest.mark.parametrize("compiler_cls", LOGICAL_COMPILERS)
class TestLogicalBaselines:
    def test_unitary_equivalence(self, compiler_cls, tiny_program):
        result = compiler_cls().compile(tiny_program)
        reference = terms_unitary(result.implemented_terms)
        actual = circuit_unitary(result.circuit)
        overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_implemented_terms_are_permutation(self, compiler_cls, tiny_program):
        result = compiler_cls().compile(tiny_program)
        assert sorted(t.to_label() for t in result.implemented_terms) == sorted(
            t.to_label() for t in tiny_program
        )

    def test_empty_program_rejected(self, compiler_cls):
        with pytest.raises(ValueError):
            compiler_cls().compile([])


class TestBaselineOrdering:
    def test_paulihedral_beats_naive(self, small_program):
        naive = NaiveCompiler().compile(small_program)
        ph = PaulihedralCompiler().compile(small_program)
        assert ph.metrics.cx_count <= naive.metrics.cx_count

    def test_commuting_run_partition(self):
        terms = [
            PauliTerm.from_label("XXI", 0.1),
            PauliTerm.from_label("YYI", 0.1),  # commutes with XXI
            PauliTerm.from_label("ZII", 0.1),  # anticommutes with both
        ]
        runs = partition_commuting_runs(terms)
        assert [len(r) for r in runs] == [2, 1]


class TestHardwareAwareBaselines:
    def test_routed_gates_respect_topology(self, qaoa_line_program):
        topology = Topology.grid(2, 4)
        for compiler_cls in (PaulihedralCompiler, TetrisCompiler):
            result = compiler_cls(topology=topology).compile(qaoa_line_program)
            for gate in result.circuit:
                if gate.is_two_qubit():
                    assert topology.are_connected(*gate.qubits)
            assert result.routing_overhead is not None


class TestTwoQAN:
    def test_rejects_non_two_local_programs(self, small_program):
        with pytest.raises(ValueError):
            TwoQANCompiler().compile(small_program)

    def test_logical_compilation(self, qaoa_line_program):
        result = TwoQANCompiler().compile(qaoa_line_program)
        reference = terms_unitary(result.implemented_terms)
        actual = circuit_unitary(result.circuit)
        overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_hardware_compilation_respects_topology(self, qaoa_line_program):
        topology = Topology.ring(8)
        result = TwoQANCompiler(topology=topology).compile(qaoa_line_program)
        for gate in result.circuit:
            if gate.is_two_qubit():
                assert topology.are_connected(*gate.qubits)
        assert len(result.implemented_terms) == len(qaoa_line_program)
        assert result.metrics.swap_count >= 0
