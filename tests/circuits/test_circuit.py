"""Tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


class TestCircuitConstruction:
    def test_builder_methods_append(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.3, 1).rpp("x", "z", 0.1, 1, 2).swap(0, 2)
        assert len(circuit) == 5
        assert circuit.count_2q() == 3

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(5)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_su4_gate_carries_matrix(self):
        circuit = QuantumCircuit(2)
        circuit.su4(np.eye(4), 0, 1)
        assert circuit[0].name == "su4"
        assert np.allclose(circuit[0].matrix(), np.eye(4))


class TestCircuitTransforms:
    def test_compose(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert [g.name for g in combined] == ["h", "cx"]

    def test_inverse_reverses_and_inverts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).s(1).cx(0, 1).rz(0.4, 1)
        inverse = circuit.inverse()
        assert [g.name for g in inverse] == ["rz", "cx", "sdg", "h"]
        assert inverse[0].params == (-0.4,)
        product = circuit.compose(inverse).unitary()
        assert np.allclose(product, np.eye(4), atol=1e-9)

    def test_remapped(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remapped({0: 3, 1: 1}, num_qubits=4)
        assert remapped[0].qubits == (3, 1)

    def test_filtered(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        assert len(circuit.filtered(lambda g: g.is_two_qubit())) == 1


class TestCircuitMetrics:
    def test_gate_counts(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1)
        assert circuit.gate_counts() == {"h": 2, "cx": 1}
        assert circuit.count("h") == 2

    def test_depth_excludes_1q_when_requested(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).cx(0, 1).h(1).cx(0, 1)
        assert circuit.depth() == 5
        assert circuit.depth_2q() == 2

    def test_two_qubit_pairs_and_interaction_graph(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 0).cx(1, 2)
        assert circuit.two_qubit_pairs() == [(0, 1), (0, 1), (1, 2)]
        graph = circuit.interaction_graph()
        assert graph[0][1]["count"] == 2
        assert graph[1][2]["count"] == 1

    def test_qubits_used(self):
        circuit = QuantumCircuit(5)
        circuit.cx(3, 1)
        assert circuit.qubits_used() == (1, 3)
