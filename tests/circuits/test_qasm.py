"""Tests for OpenQASM 2 export.

Beyond spot checks, every gate family in the library is exported and
*parsed back structurally* with a minimal OpenQASM 2 reader: directly
representable gates must round-trip name-for-name, and the PHOENIX gates
that require rebase (universal controlled Paulis, ``rpp``, ``su4``) must
come back as a qelib1-only circuit implementing the same unitary.
"""

import math
import re

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary

#: QASM name -> library name, reversing the export table's one rename.
_QASM_TO_LIB = {"id": "i"}

_GATE_LINE = re.compile(r"([a-z0-9]+)(?:\(([^)]*)\))?\s+(.*);")


def parse_qasm(text: str) -> QuantumCircuit:
    """Minimal OpenQASM 2 reader for programs emitted by circuit_to_qasm."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    assert lines[0] == "OPENQASM 2.0;"
    assert lines[1] == 'include "qelib1.inc";'
    register = re.fullmatch(r"qreg q\[(\d+)\];", lines[2])
    assert register is not None
    circuit = QuantumCircuit(int(register.group(1)))
    for line in lines[3:]:
        match = _GATE_LINE.fullmatch(line)
        assert match is not None, f"unparseable QASM line: {line!r}"
        name, params_text, qubits_text = match.groups()
        qubits = [int(q) for q in re.findall(r"q\[(\d+)\]", qubits_text)]
        params = (
            tuple(float(p) for p in params_text.split(","))
            if params_text is not None
            else ()
        )
        circuit._add(_QASM_TO_LIB.get(name, name), qubits, params)
    return circuit


def assert_same_unitary(circuit_a: QuantumCircuit, circuit_b: QuantumCircuit):
    """The two circuits agree up to global phase."""
    u = circuit_unitary(circuit_a)
    v = circuit_unitary(circuit_b)
    overlap = abs(np.trace(u.conj().T @ v)) / u.shape[0]
    assert overlap == pytest.approx(1.0, abs=1e-9)


def structural_gates(circuit: QuantumCircuit):
    return [(g.name, g.qubits, tuple(round(p, 9) for p in g.params)) for g in circuit]


class TestQasmGateFamilies:
    def test_fixed_1q_gates_round_trip(self):
        circuit = QuantumCircuit(2)
        for name in ("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"):
            getattr(circuit, name)(0)
        parsed = parse_qasm(circuit.to_qasm())
        assert structural_gates(parsed) == structural_gates(circuit)

    def test_parametric_1q_gates_round_trip(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.125, 0).ry(-1.5, 0).rz(math.pi / 3, 0).u3(0.1, -0.2, 2.5, 0)
        parsed = parse_qasm(circuit.to_qasm())
        assert structural_gates(parsed) == structural_gates(circuit)
        assert_same_unitary(parsed, circuit)

    def test_direct_2q_gates_round_trip(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cz(1, 2).cy(2, 0).swap(0, 2)
        parsed = parse_qasm(circuit.to_qasm())
        assert structural_gates(parsed) == structural_gates(circuit)

    def test_parametric_2q_gates_round_trip(self):
        circuit = QuantumCircuit(2)
        circuit.rxx(0.3, 0, 1).ryy(-0.7, 1, 0).rzz(1.1, 0, 1).rzx(0.25, 1, 0)
        parsed = parse_qasm(circuit.to_qasm())
        assert structural_gates(parsed) == structural_gates(circuit)
        assert_same_unitary(parsed, circuit)

    @pytest.mark.parametrize("kind", ["xx", "yy", "zz", "xy", "yz", "zx"])
    def test_controlled_paulis_rebase_to_qelib(self, kind):
        circuit = QuantumCircuit(2)
        circuit.controlled_pauli(kind, 0, 1)
        qasm = circuit.to_qasm()
        assert f"c{kind}" not in qasm
        parsed = parse_qasm(qasm)
        assert_same_unitary(parsed, circuit)

    def test_rpp_rebases_to_qelib(self):
        circuit = QuantumCircuit(2)
        circuit.rpp("y", "z", 0.4, 0, 1)
        qasm = circuit.to_qasm()
        assert "rpp" not in qasm
        parsed = parse_qasm(qasm)
        assert_same_unitary(parsed, circuit)

    def test_su4_export_raises_documented_error(self):
        # Opaque SU(4) gates have no qelib1 lowering (no KAK in this repo,
        # see DESIGN.md §6): export must fail loudly, not emit invalid QASM.
        from repro.circuits.gates import gate_matrix

        circuit = QuantumCircuit(2)
        matrix = gate_matrix("rpp", (2.0, 3.0, 0.7))  # an arbitrary SU(4)
        circuit.su4(matrix, 0, 1)
        with pytest.raises(ValueError, match="su4"):
            circuit.to_qasm()

    def test_mixed_circuit_parses_back(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.5, 1).controlled_pauli("yz", 1, 2).rpp(
            "x", "x", -0.3, 0, 2
        )
        parsed = parse_qasm(circuit.to_qasm())
        assert parsed.num_qubits == 3
        assert_same_unitary(parsed, circuit)


class TestQasmExport:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        qasm = circuit.to_qasm()
        assert "OPENQASM 2.0;" in qasm
        assert "qreg q[3];" in qasm
        assert "h q[0];" in qasm

    def test_parameterised_gates(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.25, 0).rzz(0.5, 0, 1).u3(0.1, 0.2, 0.3, 1)
        qasm = circuit.to_qasm()
        assert "rz(0.25) q[0];" in qasm
        assert "rzz(0.5) q[0], q[1];" in qasm
        assert "u3(0.1, 0.2, 0.3) q[1];" in qasm

    def test_native_ir_gates_are_lowered(self):
        circuit = QuantumCircuit(2)
        circuit.controlled_pauli("xy", 0, 1).rpp("x", "z", 0.3, 0, 1)
        qasm = circuit.to_qasm()
        # Universal controlled Paulis and rpp do not exist in qelib1: they
        # must have been rebased to cx + 1Q gates.
        assert "cxy" not in qasm
        assert "rpp" not in qasm
        assert "cx q[0], q[1];" in qasm
