"""Tests for OpenQASM 2 export."""

from repro.circuits.circuit import QuantumCircuit


class TestQasmExport:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        qasm = circuit.to_qasm()
        assert "OPENQASM 2.0;" in qasm
        assert "qreg q[3];" in qasm
        assert "h q[0];" in qasm

    def test_parameterised_gates(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.25, 0).rzz(0.5, 0, 1).u3(0.1, 0.2, 0.3, 1)
        qasm = circuit.to_qasm()
        assert "rz(0.25) q[0];" in qasm
        assert "rzz(0.5) q[0], q[1];" in qasm
        assert "u3(0.1, 0.2, 0.3) q[1];" in qasm

    def test_native_ir_gates_are_lowered(self):
        circuit = QuantumCircuit(2)
        circuit.controlled_pauli("xy", 0, 1).rpp("x", "z", 0.3, 0, 1)
        qasm = circuit.to_qasm()
        # Universal controlled Paulis and rpp do not exist in qelib1: they
        # must have been rebased to cx + 1Q gates.
        assert "cxy" not in qasm
        assert "rpp" not in qasm
        assert "cx q[0], q[1];" in qasm
