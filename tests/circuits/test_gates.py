"""Tests for the gate library."""

import numpy as np
import pytest

from repro.circuits.gates import (
    Gate,
    controlled_pauli_matrix,
    decode_pauli_pair,
    encode_pauli_pair,
    gate_matrix,
    u3_angles_from_matrix,
    u3_matrix,
)


class TestGateMatrices:
    def test_fixed_gates_are_unitary(self):
        for name in ("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"):
            matrix = gate_matrix(name)
            assert np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-12)

    def test_rotation_gates(self):
        assert np.allclose(gate_matrix("rz", (0.0,)), np.eye(2))
        assert np.allclose(
            gate_matrix("rx", (np.pi,)), -1j * gate_matrix("x"), atol=1e-12
        )

    def test_controlled_pauli_matrix_zx_is_cnot(self):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        assert np.allclose(controlled_pauli_matrix("z", "x"), cnot)

    def test_rpp_encode_decode(self):
        params = encode_pauli_pair("x", "z", 0.7)
        assert decode_pauli_pair(params) == ("x", "z", 0.7)

    def test_rpp_matrix_matches_named_rotation(self):
        assert np.allclose(
            gate_matrix("rpp", encode_pauli_pair("z", "z", 0.4)),
            gate_matrix("rzz", (0.4,)),
        )

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError):
            gate_matrix("foo")


class TestGateObject:
    def test_repeated_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_dagger_of_rotation(self):
        gate = Gate("rz", (0,), (0.3,))
        assert gate.dagger().params == (-0.3,)

    def test_dagger_of_u3_matches_matrix_inverse(self):
        gate = Gate("u3", (0,), (0.3, 0.5, -0.2))
        assert np.allclose(gate.dagger().matrix(), gate.matrix().conj().T)

    def test_dagger_of_su4(self):
        matrix = gate_matrix("cx")
        gate = Gate("su4", (0, 1), (), matrix)
        assert np.allclose(gate.dagger().matrix(), matrix.conj().T)

    def test_self_inverse_dagger(self):
        gate = Gate("cxy", (0, 1))
        assert gate.dagger() is gate


class TestU3Extraction:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip_random_su2(self, seed):
        rng = np.random.default_rng(seed)
        matrix = np.linalg.qr(rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2)))[0]
        theta, phi, lam = u3_angles_from_matrix(matrix)
        rebuilt = u3_matrix(theta, phi, lam)
        index = np.unravel_index(np.argmax(np.abs(matrix)), matrix.shape)
        phase = matrix[index] / rebuilt[index]
        assert np.allclose(matrix, phase * rebuilt, atol=1e-9)

    def test_diagonal_matrix(self):
        matrix = np.diag([1.0, np.exp(1j * 0.8)])
        theta, phi, lam = u3_angles_from_matrix(matrix)
        assert theta == pytest.approx(0.0)
        assert (phi + lam) % (2 * np.pi) == pytest.approx(0.8)

    def test_antidiagonal_matrix(self):
        matrix = np.array([[0, 1j], [1, 0]], dtype=complex)
        theta, phi, lam = u3_angles_from_matrix(matrix)
        rebuilt = u3_matrix(theta, phi, lam)
        phase = matrix[1, 0] / rebuilt[1, 0]
        assert np.allclose(matrix, phase * rebuilt, atol=1e-9)
