"""Tests for layering, depth and endian vectors."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import circuit_depth, circuit_layers, endian_vectors


class TestLayers:
    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        layers = circuit_layers(circuit, two_qubit_only=True)
        assert len(layers) == 2
        assert len(layers[0]) == 2

    def test_two_qubit_only_skips_1q(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1).cx(0, 1)
        assert circuit_depth(circuit, two_qubit_only=True) == 2
        assert circuit_depth(circuit) == 4

    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit_depth(circuit) == 0
        assert circuit_layers(circuit) == []


class TestEndianVectors:
    def test_simple_chain(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        e_left, e_right = endian_vectors(circuit)
        assert e_left == [0, 0, 1]
        assert e_right == [1, 0, 0]

    def test_untouched_qubit_gets_full_depth(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 1)
        e_left, e_right = endian_vectors(circuit)
        assert e_left[2] == 2
        assert e_right[2] == 2

    def test_restricted_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        e_left, e_right = endian_vectors(circuit, qubits=[1, 2])
        assert e_left == [0, 0]
        assert e_right == [0, 0]
