"""Tests for layering, depth and endian vectors."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import circuit_depth, circuit_layers, endian_vectors


class TestLayers:
    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        layers = circuit_layers(circuit, two_qubit_only=True)
        assert len(layers) == 2
        assert len(layers[0]) == 2

    def test_two_qubit_only_skips_1q(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1).cx(0, 1)
        assert circuit_depth(circuit, two_qubit_only=True) == 2
        assert circuit_depth(circuit) == 4

    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert circuit_depth(circuit) == 0
        assert circuit_layers(circuit) == []


class TestEndianVectors:
    def test_simple_chain(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        e_left, e_right = endian_vectors(circuit)
        assert e_left == [0, 0, 1]
        assert e_right == [1, 0, 0]

    def test_untouched_qubit_gets_full_depth(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(0, 1)
        e_left, e_right = endian_vectors(circuit)
        assert e_left[2] == 2
        assert e_right[2] == 2

    def test_restricted_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3).cx(1, 2)
        e_left, e_right = endian_vectors(circuit, qubits=[1, 2])
        assert e_left == [0, 0]
        assert e_right == [0, 0]


class TestTwoQubitGeometry:
    def _reference(self, pairs, num_qubits):
        """Oracle: build the real circuit and use layers/endian vectors."""
        circuit = QuantumCircuit(num_qubits)
        for a, b in pairs:
            circuit.cx(a, b)
        e_l, e_r = endian_vectors(circuit)
        depth = circuit_depth(circuit, two_qubit_only=True)
        return e_l, e_r, depth

    def test_matches_endian_vectors_on_random_sequences(self):
        import numpy as np

        from repro.circuits.dag import two_qubit_geometry

        rng = np.random.default_rng(23)
        for _ in range(80):
            n = int(rng.integers(2, 12))
            pairs = [
                tuple(rng.choice(n, 2, replace=False).tolist())
                for _ in range(int(rng.integers(0, 16)))
            ]
            e_l, e_r, depth = two_qubit_geometry(pairs, n)
            ref_l, ref_r, ref_depth = self._reference(pairs, n)
            assert depth == ref_depth
            assert e_l.tolist() == ref_l
            assert e_r.tolist() == ref_r

    def test_untouched_qubits_get_full_depth(self):
        from repro.circuits.dag import two_qubit_geometry

        e_l, e_r, depth = two_qubit_geometry([(0, 1), (0, 1)], 3)
        assert depth == 2
        assert e_l[2] == 2 and e_r[2] == 2

    def test_empty_pair_list(self):
        from repro.circuits.dag import two_qubit_geometry

        e_l, e_r, depth = two_qubit_geometry([], 4)
        assert depth == 0
        assert not e_l.any() and not e_r.any()
