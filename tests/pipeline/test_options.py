"""Tests for CompileOptions and the shared program normaliser."""

import pytest

from repro.hardware.topology import Topology
from repro.paulis.hamiltonian import Hamiltonian
from repro.paulis.pauli import PauliTerm
from repro.pipeline.options import CompileOptions, as_terms


class TestAsTerms:
    def test_hamiltonian_is_expanded(self):
        ham = Hamiltonian.from_labels([("XX", 0.5), ("ZZ", -0.25)])
        terms = as_terms(ham)
        assert [t.to_label() for t in terms] == ["XX", "ZZ"]

    def test_sequence_is_copied(self, tiny_program):
        terms = as_terms(tiny_program)
        assert terms == list(tiny_program)
        assert terms is not tiny_program

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="empty program"):
            as_terms([])

    def test_allow_empty_for_deferred_failure(self):
        assert as_terms([], allow_empty=True) == []

    def test_single_normaliser_is_shared(self):
        # The three layers that used to re-implement the coercion all
        # resolve to the one repro.pipeline implementation.
        from repro.baselines import base as baselines_base
        from repro.core import compiler as core_compiler
        from repro.pipeline import options as pipeline_options

        assert baselines_base.as_terms is pipeline_options.as_terms
        assert core_compiler.as_terms is pipeline_options.as_terms


class TestCompileOptionsValidation:
    def test_defaults(self):
        options = CompileOptions()
        assert options.isa == "cnot"
        assert options.topology is None
        assert options.optimization_level == 2
        assert options.lookahead == 10
        assert options.seed == 0
        assert options.simplify_engine == "auto"
        assert not options.hardware_aware

    def test_invalid_isa_rejected(self):
        with pytest.raises(ValueError, match="unsupported ISA"):
            CompileOptions(isa="xy")

    def test_invalid_simplify_engine_rejected(self):
        with pytest.raises(ValueError, match="unsupported simplify engine"):
            CompileOptions(simplify_engine="magic")

    def test_invalid_ordering_engine_rejected(self):
        with pytest.raises(ValueError, match="unsupported ordering engine"):
            CompileOptions(ordering_engine="magic")

    def test_ordering_engine_defaults_to_auto(self):
        assert CompileOptions().ordering_engine == "auto"

    def test_scalars_coerced_to_int(self):
        options = CompileOptions(optimization_level="3", lookahead="5", seed="1")
        assert (options.optimization_level, options.lookahead, options.seed) == (3, 5, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CompileOptions().isa = "su4"

    def test_replace(self):
        base = CompileOptions()
        su4 = base.replace(isa="su4")
        assert su4.isa == "su4" and base.isa == "cnot"

    def test_hardware_aware_needs_a_real_topology(self):
        assert CompileOptions(topology=Topology.line(4)).hardware_aware
        assert not CompileOptions(topology=Topology.all_to_all(4)).hardware_aware


class TestConfigFingerprint:
    """Guard rails against cache-key drift (satellite: pinned goldens)."""

    # Pinned from the pre-pipeline PhoenixCompiler.config_fingerprint():
    # any change here silently invalidates every existing cache.
    GOLDEN_PHOENIX_DEFAULT = (
        "5a2b8242075da6c2373eb5f239ed8819e26a619f0b3bbd2dba19e2c411941a43"
    )
    GOLDEN_PHOENIX_SU4_LINE4 = (
        "88ce57cb0ba3fa859edbf16b8cf7b2030e767d4b1300892cc423bc35ebb558b6"
    )

    def test_default_fingerprint_matches_pinned_golden(self):
        assert CompileOptions().config_fingerprint() == self.GOLDEN_PHOENIX_DEFAULT

    def test_variant_fingerprint_matches_pinned_golden(self):
        options = CompileOptions(isa="su4", topology=Topology.line(4))
        assert options.config_fingerprint() == self.GOLDEN_PHOENIX_SU4_LINE4

    def test_facade_delegates_to_options(self):
        from repro.core.compiler import PhoenixCompiler

        assert (
            PhoenixCompiler().config_fingerprint() == self.GOLDEN_PHOENIX_DEFAULT
        )
        assert PhoenixCompiler().config_dict() == CompileOptions().config_dict(
            "phoenix"
        )

    def test_config_dict_shape(self):
        config = CompileOptions().config_dict()
        assert config == {
            "compiler": "phoenix",
            "isa": "cnot",
            "lookahead": 10,
            "optimization_level": 2,
            "seed": 0,
            "topology": None,
        }

    def test_simplify_engine_must_not_split_cache_entries(self):
        fast = CompileOptions(simplify_engine="fast")
        reference = CompileOptions(simplify_engine="reference")
        assert fast.config_fingerprint() == reference.config_fingerprint()

    def test_ordering_engine_must_not_split_cache_entries(self):
        fast = CompileOptions(ordering_engine="fast")
        reference = CompileOptions(ordering_engine="reference")
        assert fast.config_fingerprint() == reference.config_fingerprint()
        assert "ordering_engine" not in fast.config_dict()

    def test_every_compile_affecting_knob_changes_the_digest(self):
        base = CompileOptions().config_fingerprint()
        variants = [
            CompileOptions(isa="su4"),
            CompileOptions(optimization_level=3),
            CompileOptions(lookahead=5),
            CompileOptions(seed=1),
            CompileOptions(topology=Topology.line(4)),
        ]
        digests = {base} | {v.config_fingerprint() for v in variants}
        assert len(digests) == len(variants) + 1
