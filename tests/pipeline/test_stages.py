"""Stage-level unit tests: each named stage in isolation on a small UCCSD
program, plus the Pipeline runner machinery (timings, hooks, composition)."""

import pytest

from repro.core.emission import groups_to_circuit
from repro.core.grouping import group_terms
from repro.core.ordering import order_groups
from repro.core.simplify import SimplifiedGroup, simplify_group
from repro.hardware.topology import Topology
from repro.metrics.circuit_metrics import circuit_metrics
from repro.pipeline import (
    CompileContext,
    CompileOptions,
    ConsolidateStage,
    EmitStage,
    FunctionStage,
    GroupStage,
    OptimizeStage,
    OrderStage,
    Pipeline,
    RebaseStage,
    RouteStage,
    SimplifyStage,
    backend_stages,
    frontend_stages,
)
from repro.synthesis.consolidate import consolidate_su4
from repro.synthesis.rebase import rebase_to_cx
from repro.transforms.optimize import optimize_circuit


def gate_tuples(circuit):
    return [(g.name, g.qubits, g.params) for g in circuit]


def fresh_context(terms, **option_kwargs):
    options = CompileOptions(**option_kwargs)
    return CompileContext.from_program(list(terms), options)


class TestFrontendStages:
    def test_group_stage_matches_group_terms(self, uccsd_program):
        context = fresh_context(uccsd_program)
        GroupStage().run(context)
        direct = group_terms(list(uccsd_program))
        assert len(context.groups) == len(direct)
        assert [g.qubits for g in context.groups] == [g.qubits for g in direct]

    def test_simplify_stage_simplifies_every_group(self, uccsd_program):
        context = fresh_context(uccsd_program)
        GroupStage().run(context)
        SimplifyStage().run(context)
        assert all(isinstance(g, SimplifiedGroup) for g in context.groups)
        direct = [simplify_group(g) for g in group_terms(list(uccsd_program))]
        assert len(context.groups) == len(direct)

    def test_order_stage_matches_order_groups(self, uccsd_program):
        context = fresh_context(uccsd_program, lookahead=4)
        GroupStage().run(context)
        SimplifyStage().run(context)
        ordered_by_stage = None
        OrderStage().run(context)
        ordered_by_stage = context.groups

        direct = order_groups(
            [simplify_group(g) for g in group_terms(list(uccsd_program))],
            context.num_qubits,
            lookahead=4,
            routing_aware=False,
        )
        stage_orders = [
            [t.to_label() for t in g.implemented_terms()] for g in ordered_by_stage
        ]
        direct_orders = [
            [t.to_label() for t in g.implemented_terms()] for g in direct
        ]
        assert stage_orders == direct_orders

    def test_emit_stage_builds_native_circuit_and_trotter_order(self, uccsd_program):
        context = fresh_context(uccsd_program)
        for stage in frontend_stages():
            stage.run(context)
        assert context.native is not None and len(context.native) > 0
        expected = [t for g in context.groups for t in g.implemented_terms()]
        assert [t.to_label() for t in context.implemented_terms] == [
            t.to_label() for t in expected
        ]
        rebuilt = groups_to_circuit(context.groups, context.num_qubits)
        assert gate_tuples(rebuilt) == gate_tuples(context.native)


class TestBackendStages:
    @pytest.fixture()
    def emitted_context(self, uccsd_program):
        context = fresh_context(uccsd_program)
        for stage in frontend_stages():
            stage.run(context)
        return context

    def test_rebase_stage(self, emitted_context):
        RebaseStage().run(emitted_context)
        assert gate_tuples(emitted_context.logical_cx) == gate_tuples(
            rebase_to_cx(emitted_context.native)
        )

    def test_optimize_stage_respects_level(self, emitted_context):
        RebaseStage().run(emitted_context)
        raw = emitted_context.logical_cx
        OptimizeStage().run(emitted_context)
        assert gate_tuples(emitted_context.logical_cx) == gate_tuples(
            optimize_circuit(raw, level=2)
        )

    def test_consolidate_stage_cnot_is_passthrough(self, emitted_context):
        RebaseStage().run(emitted_context)
        OptimizeStage().run(emitted_context)
        ConsolidateStage(source="native").run(emitted_context)
        assert emitted_context.logical is emitted_context.logical_cx
        assert emitted_context.final_circuit is emitted_context.logical
        assert emitted_context.final_metrics == circuit_metrics(
            emitted_context.logical
        )

    def test_consolidate_stage_source_selects_the_circuit(self, uccsd_program):
        native_ctx = fresh_context(uccsd_program, isa="su4")
        for stage in frontend_stages():
            stage.run(native_ctx)
        RebaseStage().run(native_ctx)
        OptimizeStage().run(native_ctx)

        cx_ctx = fresh_context(uccsd_program, isa="su4")
        for stage in frontend_stages():
            stage.run(cx_ctx)
        RebaseStage().run(cx_ctx)
        OptimizeStage().run(cx_ctx)

        ConsolidateStage(source="native").run(native_ctx)
        ConsolidateStage(source="logical_cx").run(cx_ctx)
        assert gate_tuples(native_ctx.logical) == gate_tuples(
            consolidate_su4(native_ctx.native)
        )
        assert gate_tuples(cx_ctx.logical) == gate_tuples(
            consolidate_su4(cx_ctx.logical_cx)
        )

    def test_consolidate_stage_rejects_unknown_source(self):
        with pytest.raises(ValueError, match="consolidate source"):
            ConsolidateStage(source="routed")

    def test_route_stage_is_a_noop_without_topology(self, emitted_context):
        RebaseStage().run(emitted_context)
        OptimizeStage().run(emitted_context)
        ConsolidateStage(source="native").run(emitted_context)
        before = emitted_context.final_circuit
        RouteStage().run(emitted_context)
        assert emitted_context.routed is None
        assert emitted_context.final_circuit is before

    def test_route_stage_routes_on_a_real_topology(self, uccsd_program):
        topology = Topology.grid(2, 2)
        context = fresh_context(uccsd_program, topology=topology)
        for stage in frontend_stages() + backend_stages("native"):
            stage.run(context)
        assert context.routed is not None
        assert context.routing_overhead is not None
        for gate in context.final_circuit:
            if gate.is_two_qubit():
                assert topology.are_connected(*gate.qubits)


class TestPipelineRunner:
    def test_stage_timings_recorded_for_every_stage(self, uccsd_program):
        context = fresh_context(uccsd_program)
        pipeline = Pipeline(frontend_stages() + backend_stages("native"))
        pipeline.run(context)
        assert list(context.stage_timings) == [
            "group", "simplify", "order", "emit",
            "rebase", "optimize", "consolidate", "route",
        ]
        assert all(t >= 0.0 for t in context.stage_timings.values())

    def test_hooks_fire_around_every_stage(self, uccsd_program):
        events = []

        class Recorder:
            def before_stage(self, stage, context):
                events.append(("before", stage.name))

            def after_stage(self, stage, context, elapsed):
                assert elapsed >= 0.0
                events.append(("after", stage.name))

        context = fresh_context(uccsd_program)
        Pipeline(frontend_stages()).run(context, hooks=[Recorder()])
        assert events == [
            ("before", "group"), ("after", "group"),
            ("before", "simplify"), ("after", "simplify"),
            ("before", "order"), ("after", "order"),
            ("before", "emit"), ("after", "emit"),
        ]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage names"):
            Pipeline([GroupStage(), GroupStage()])

    def test_composition_helpers(self):
        pipeline = Pipeline(frontend_stages())
        noop = FunctionStage("order", lambda context: None)
        assert pipeline.replaced("order", noop).stage_names() == pipeline.stage_names()
        probe = FunctionStage("probe", lambda context: None)
        assert pipeline.inserted_after("group", probe).stage_names() == [
            "group", "probe", "simplify", "order", "emit",
        ]
        assert pipeline.inserted_before("group", probe).stage_names() == [
            "probe", "group", "simplify", "order", "emit",
        ]
        assert pipeline.without("simplify").stage_names() == [
            "group", "order", "emit",
        ]
        with pytest.raises(ValueError, match="no stage named"):
            pipeline.replaced("routing", probe)

    def test_custom_stage_injection_through_a_compiler(self, uccsd_program):
        # The documented ablation idiom: disable the Tetris-like ordering
        # by swapping the order stage for a no-op.
        from repro.core.compiler import PhoenixCompiler

        class NoOrderingPhoenix(PhoenixCompiler):
            def build_pipeline(self):
                return super().build_pipeline().replaced(
                    "order", FunctionStage("order", lambda context: None)
                )

        full = PhoenixCompiler().compile(list(uccsd_program))
        ablated = NoOrderingPhoenix().compile(list(uccsd_program))
        assert "order" in ablated.stage_timings
        # Same terms implemented either way; ordering only changes layout.
        assert sorted(t.to_label() for t in ablated.implemented_terms) == sorted(
            t.to_label() for t in full.implemented_terms
        )
