"""Tests for the global compiler registry and its single-table guarantee."""

import pytest

from repro.pipeline import (
    CompileOptions,
    build_compiler,
    compiler_names,
    get_compiler_factory,
    is_order_sensitive,
    register_compiler,
    registered_compilers,
    unregister_compiler,
)


class TestRegistration:
    def test_builtins_are_registered(self):
        assert set(compiler_names()) >= {
            "phoenix", "naive", "paulihedral", "tetris", "tket", "2qan",
        }

    def test_unknown_compiler_raises(self):
        with pytest.raises(ValueError, match="unknown compiler"):
            build_compiler("qiskit")
        with pytest.raises(ValueError, match="unknown compiler"):
            get_compiler_factory("qiskit")

    def test_conflicting_registration_rejected(self):
        class Custom:
            pass

        register_compiler("custom-compiler", Custom)
        try:
            # Re-registering the same factory is idempotent...
            register_compiler("custom-compiler", Custom)
            # ...but a different factory needs overwrite=True.
            with pytest.raises(ValueError, match="already registered"):
                register_compiler("custom-compiler", object)
            register_compiler("custom-compiler", object, overwrite=True)
            assert registered_compilers()["custom-compiler"] is object
        finally:
            assert unregister_compiler("custom-compiler")
        assert "custom-compiler" not in registered_compilers()

    def test_order_sensitivity_flag(self):
        assert is_order_sensitive("naive")
        assert not is_order_sensitive("phoenix")
        assert not is_order_sensitive("tetris")


class TestBuildCompiler:
    def test_options_reach_the_compiler(self):
        options = CompileOptions(optimization_level=3, lookahead=5, seed=7)
        phoenix = build_compiler("phoenix", options)
        assert phoenix.optimization_level == 3
        assert phoenix.lookahead == 5
        assert phoenix.seed == 7

    def test_baselines_take_only_their_knobs(self):
        # Baselines accept no lookahead/simplify_engine; from_options must
        # filter rather than crash.
        options = CompileOptions(optimization_level=1, lookahead=3)
        naive = build_compiler("naive", options)
        assert naive.optimization_level == 1

    def test_default_options(self):
        assert build_compiler("phoenix").options == CompileOptions()

    def test_registered_fallback_signature(self, tiny_program):
        # A factory without from_options gets the classic four kwargs.
        calls = {}

        def factory(isa, topology, optimization_level, seed):
            calls.update(
                isa=isa, topology=topology,
                optimization_level=optimization_level, seed=seed,
            )
            return object()

        register_compiler("plain-factory", factory)
        try:
            build_compiler("plain-factory", CompileOptions(optimization_level=3))
            assert calls == {
                "isa": "cnot", "topology": None,
                "optimization_level": 3, "seed": 0,
            }
        finally:
            unregister_compiler("plain-factory")


class TestSingleTableAcrossLayers:
    def test_service_registry_is_the_global_table(self):
        import repro.pipeline.registry as pipeline_registry
        import repro.service.registry as service_registry

        assert service_registry.COMPILERS is pipeline_registry.COMPILERS
        assert (
            service_registry.ORDER_SENSITIVE_COMPILERS
            is pipeline_registry.ORDER_SENSITIVE_COMPILERS
        )
        assert service_registry.compiler_names is pipeline_registry.compiler_names

    def test_harness_default_lineup_resolves_from_the_registry(self):
        from repro.experiments.harness import default_compilers

        table = registered_compilers()
        for spec in default_compilers(include_naive=True):
            assert table[spec.name] is spec.factory

    def test_cli_choices_come_from_the_registry(self):
        from repro.service.cli import build_parser

        parser = build_parser()
        compile_parser = next(
            action for action in parser._subparsers._group_actions
        ).choices["compile"]
        compiler_action = next(
            action
            for action in compile_parser._actions
            if "--compiler" in action.option_strings
        )
        assert list(compiler_action.choices) == compiler_names()

    def test_custom_registration_is_visible_to_the_service(self, tiny_program):
        from repro.core.compiler import PhoenixCompiler
        from repro.service.registry import CompilerOptions
        from repro.service.service import CompilationService

        class LowLookaheadPhoenix(PhoenixCompiler):
            name = "phoenix-la3"

            def __init__(self, **kwargs):
                kwargs.setdefault("lookahead", 3)
                super().__init__(**kwargs)

        register_compiler("phoenix-la3", LowLookaheadPhoenix)
        try:
            # A **kwargs subclass keeps its own defaults for the pipeline
            # knobs: build_compiler must not clobber the setdefault with
            # CompileOptions defaults, so registry-built and directly
            # constructed instances agree.
            built = build_compiler("phoenix-la3")
            assert built.lookahead == 3
            assert built.config_fingerprint() == (
                LowLookaheadPhoenix().config_fingerprint()
            )
            result = CompilationService().compile(
                tiny_program, CompilerOptions(compiler="phoenix-la3")
            )
            assert result.ok
            assert result.result.metrics.cx_count > 0
        finally:
            unregister_compiler("phoenix-la3")
