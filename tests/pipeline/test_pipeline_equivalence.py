"""End-to-end equivalence of the stage-pipeline redesign.

Two families of guarantees:

* the facade constructors, the registry (``build_compiler``), and the
  service spec (``CompilerOptions.build``) all produce bit-identical
  circuits, metrics, and content-addressed cache keys for every registered
  compiler x ISA x topology combination; and
* the pipeline reproduces the pre-refactor code paths exactly — asserted
  against an inline replica of the old ``PhoenixCompiler._compile_terms``
  / ``finalize_compilation`` bodies, and against cache keys pinned from
  the pre-refactor implementation.
"""

from dataclasses import replace

import pytest

from repro.core.emission import groups_to_circuit
from repro.core.grouping import group_terms
from repro.core.ordering import order_groups
from repro.core.simplify import simplify_group
from repro.hardware.routing.sabre import route_circuit
from repro.metrics.circuit_metrics import circuit_metrics
from repro.pipeline import CompileOptions, build_compiler, compiler_names
from repro.service.cache import MemoryCacheStore, compilation_cache_key
from repro.service.registry import CompilerOptions, resolve_topology
from repro.service.service import CompilationService
from repro.synthesis.consolidate import consolidate_su4
from repro.synthesis.rebase import rebase_to_cx
from repro.transforms.optimize import optimize_circuit

ISAS = ("cnot", "su4")
TOPOLOGIES = (None, "grid-2x3")


def gate_tuples(circuit):
    return [(g.name, g.qubits, g.params) for g in circuit]


def program_for(compiler_name, uccsd_program, qaoa_line_program):
    # 2QAN only handles 2-local programs; every other compiler gets the
    # UCCSD instance.  The QAOA line program needs a 6+-qubit topology.
    if compiler_name == "2qan":
        return list(qaoa_line_program)
    return list(uccsd_program)


class TestRegistryMatchesFacade:
    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("topology_spec", TOPOLOGIES)
    def test_every_registered_compiler_is_bit_identical(
        self, isa, topology_spec, uccsd_program, qaoa_line_program
    ):
        for name in compiler_names():
            program = program_for(name, uccsd_program, qaoa_line_program)
            spec = CompilerOptions(compiler=name, isa=isa, topology=topology_spec)
            via_spec = spec.build().compile(list(program))
            via_registry = build_compiler(
                name,
                CompileOptions(isa=isa, topology=resolve_topology(topology_spec)),
            ).compile(list(program))
            assert gate_tuples(via_spec.circuit) == gate_tuples(via_registry.circuit)
            assert gate_tuples(via_spec.logical_circuit) == gate_tuples(
                via_registry.logical_circuit
            )
            assert via_spec.metrics == via_registry.metrics
            assert via_spec.logical_metrics == via_registry.logical_metrics
            assert [t.to_label() for t in via_spec.implemented_terms] == [
                t.to_label() for t in via_registry.implemented_terms
            ]
            assert via_spec.stage_timings.keys() == via_registry.stage_timings.keys()

    def test_cache_keys_identical_across_entry_points(self, uccsd_program):
        # PhoenixCompiler(cache=...), CachingCompiler, and the service must
        # address the same store entries.
        from repro.core.compiler import PhoenixCompiler
        from repro.pipeline import CachingCompiler

        store = MemoryCacheStore()
        PhoenixCompiler(cache=store).compile(list(uccsd_program))
        assert len(store) == 1
        wrapped = CachingCompiler(PhoenixCompiler(), store)
        key = wrapped.cache_key(list(uccsd_program))
        assert key in store

        service = CompilationService(cache=store)
        assert service.compile(list(uccsd_program)).cached


class TestLegacyPathReplica:
    """The pipeline is bit-identical to the pre-refactor code paths."""

    @pytest.mark.parametrize("isa", ISAS)
    @pytest.mark.parametrize("topology_spec", TOPOLOGIES)
    def test_phoenix_matches_the_old_compile_terms_body(
        self, isa, topology_spec, uccsd_program
    ):
        # Inline replica of the pre-pipeline PhoenixCompiler._compile_terms.
        terms = list(uccsd_program)
        topology = resolve_topology(topology_spec)
        lookahead, optimization_level, seed = 10, 2, 0
        hardware_aware = topology is not None and not topology.is_all_to_all()
        num_qubits = terms[0].num_qubits

        groups = group_terms(terms)
        simplified = [simplify_group(group) for group in groups]
        ordered = order_groups(
            simplified, num_qubits, lookahead=lookahead, routing_aware=hardware_aware
        )
        native = groups_to_circuit(ordered, num_qubits)
        implemented = [t for g in ordered for t in g.implemented_terms()]
        logical_cx = optimize_circuit(rebase_to_cx(native), level=optimization_level)
        logical = consolidate_su4(native) if isa == "su4" else logical_cx
        final_circuit, final_metrics = logical, circuit_metrics(logical)
        if hardware_aware:
            routed = route_circuit(logical_cx, topology, seed=seed, decompose_swaps=False)
            hardware = optimize_circuit(
                rebase_to_cx(routed.circuit), level=optimization_level
            )
            if isa == "su4":
                hardware = consolidate_su4(hardware)
            final_circuit = hardware
            final_metrics = replace(
                circuit_metrics(hardware), swap_count=routed.swap_count
            )

        from repro.core.compiler import PhoenixCompiler

        result = PhoenixCompiler(isa=isa, topology=topology).compile(terms)
        assert gate_tuples(result.circuit) == gate_tuples(final_circuit)
        assert gate_tuples(result.logical_circuit) == gate_tuples(logical)
        assert result.metrics == final_metrics
        assert [t.to_label() for t in result.implemented_terms] == [
            t.to_label() for t in implemented
        ]

    def test_pinned_cache_keys_from_the_pre_refactor_implementation(
        self, uccsd_program
    ):
        # Recorded against the pre-pipeline code on uccsd_ansatz(2, 4,
        # encoding="jw", seed=1); drift here means existing caches are
        # silently invalidated.
        service = CompilationService()
        from repro.service.service import CompilationJob

        expectations = {
            ("phoenix", "cnot", None): (
                "e94f47178c9f2aa9840d8c5a6cb18650aeed2e7b49a157d793a261b134cb0f7a"
                "-5a2b8242075da6c2373eb5f239ed8819e26a619f0b3bbd2dba19e2c411941a43"
            ),
            ("naive", "cnot", None): (
                "e648e993bdd207c49079992746dacfc0e99489e9eb3c7f0f9685c69a7beb65ab"
                "-5198a97418b8857f3c38376c95896a89db278a06cb0e0f92a7b48d0c519222e7"
            ),
            ("phoenix", "su4", "grid-2x3"): (
                "e94f47178c9f2aa9840d8c5a6cb18650aeed2e7b49a157d793a261b134cb0f7a"
                "-01dbbfb8064976eea097ae8c43c17732be52492a61de7ad64a40cd25e97607e3"
            ),
        }
        for (name, isa, topo), expected in expectations.items():
            job = CompilationJob(
                "golden",
                list(uccsd_program),
                CompilerOptions(compiler=name, isa=isa, topology=topo),
            )
            assert service.job_key(job) == expected

    def test_baseline_fingerprints_match_the_pre_refactor_spec_hash(self):
        # Baselines never exposed config_fingerprint; their cache keys hash
        # the plain-data spec.  Pinned from the pre-refactor registry.
        golden = {
            "naive": "5198a97418b8857f3c38376c95896a89db278a06cb0e0f92a7b48d0c519222e7",
            "paulihedral": "d0ee808bb7af5fe8b79761b8ac153c6f3ab9e1febbae6ac49b3f7314e7a3f139",
            "tetris": "1b6be1ff658facf4a8452530360aef87865b227753c8c19b136ecd5d12c468d5",
            "tket": "3567aeaac4223fcbc64c62d46a3fe4c36aef5094ac397f12437f5a7a0073e85c",
        }
        for name, expected in golden.items():
            assert CompilerOptions(compiler=name).fingerprint() == expected


class TestStageTimingsSurface:
    def test_result_carries_stage_timings(self, uccsd_program):
        from repro.core.compiler import PhoenixCompiler

        result = PhoenixCompiler().compile(list(uccsd_program))
        assert list(result.stage_timings) == [
            "group", "simplify", "order", "emit",
            "rebase", "optimize", "consolidate", "route",
        ]

    def test_baseline_results_carry_stage_timings(self, uccsd_program):
        from repro.baselines import TetrisCompiler

        result = TetrisCompiler().compile(list(uccsd_program))
        assert list(result.stage_timings) == [
            "synthesize", "rebase", "optimize", "consolidate", "route",
        ]

    def test_service_json_carries_stage_timings(self, uccsd_program):
        from repro.serialize.results import result_from_dict, result_to_dict
        from repro.service.cli import _job_summary

        service = CompilationService()
        job_result = service.compile(list(uccsd_program))
        payload = result_to_dict(job_result.result)
        assert "stage_timings" in payload and payload["stage_timings"]
        round_tripped = result_from_dict(payload)
        assert round_tripped.stage_timings == pytest.approx(
            job_result.result.stage_timings
        )
        assert _job_summary(job_result)["stage_timings"] == payload["stage_timings"]

    def test_harness_surfaces_stage_timings(self, uccsd_program):
        from repro.experiments import default_compilers, run_benchmark, stage_timing_table

        results = run_benchmark(list(uccsd_program), default_compilers())
        table = stage_timing_table(results)
        for stage in ("group", "simplify", "order", "emit", "synthesize", "route"):
            assert stage in table
        for name in results:
            assert name in table
