"""Fixtures for the pipeline test suite."""

import pytest

from repro.chemistry.uccsd import uccsd_ansatz


@pytest.fixture(scope="module")
def uccsd_program():
    """A small UCCSD instance (2 electrons in 4 spin orbitals, JW)."""
    return uccsd_ansatz(2, 4, encoding="jw", seed=1)
