"""Tests for commutation-aware cancellation."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.transforms.commutation import _commutes, commutation_cancellation
from repro.circuits.gates import Gate


def _equivalent(a, b):
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    return bool(np.isclose(abs(np.trace(ua.conj().T @ ub)) / ua.shape[0], 1.0, atol=1e-9))


class TestCommutationRules:
    def test_rz_commutes_with_cx_control(self):
        assert _commutes(Gate("cx", (0, 1)), Gate("rz", (0,), (0.3,)))

    def test_rz_does_not_commute_with_cx_target(self):
        assert not _commutes(Gate("cx", (0, 1)), Gate("rz", (1,), (0.3,)))

    def test_x_commutes_with_cx_target(self):
        assert _commutes(Gate("cx", (0, 1)), Gate("x", (1,)))

    def test_cx_sharing_control_commute(self):
        assert _commutes(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_control_target_overlap_do_not_commute(self):
        assert not _commutes(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_disjoint_gates_commute(self):
        assert _commutes(Gate("cx", (0, 1)), Gate("h", (2,)))


class TestCommutationCancellation:
    def test_rz_through_cx_control_merges(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0).cx(0, 1).rz(-0.3, 0).cx(0, 1)
        optimized = commutation_cancellation(circuit)
        assert optimized.count("rz") == 0
        assert optimized.count("cx") == 0
        assert _equivalent(circuit, optimized)

    def test_cx_pair_separated_by_commuting_rz(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.4, 0).cx(0, 1)
        optimized = commutation_cancellation(circuit)
        assert optimized.count("cx") == 0
        assert _equivalent(circuit, optimized)

    def test_preserves_unitary_on_mixed_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).rz(0.2, 0).cx(0, 2).rz(-0.2, 0).cx(0, 1).x(2).cx(0, 2)
        optimized = commutation_cancellation(circuit)
        assert _equivalent(circuit, optimized)
        assert optimized.count_2q() <= circuit.count_2q()
