"""Tests for inverse cancellation and rotation merging."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.transforms.cancellation import cancel_adjacent_inverses, merge_rotations


def _equivalent(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    ua, ub = circuit_unitary(a), circuit_unitary(b)
    return bool(np.isclose(abs(np.trace(ua.conj().T @ ub)) / ua.shape[0], 1.0, atol=1e-9))


class TestInverseCancellation:
    def test_adjacent_cx_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_s_sdg_cancels(self):
        circuit = QuantumCircuit(1)
        circuit.s(0).sdg(0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_blocked_pair_does_not_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).h(0).cx(0, 1)
        assert cancel_adjacent_inverses(circuit).count("cx") == 2

    def test_nested_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).h(0).h(0).cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_stale_predecessor_regression(self):
        """Cancelling an inner pair must not fake adjacency across a survivor.

        Regression test for the bookkeeping bug where removing H·H made the
        two CX gates look adjacent even though an Rz on the control sits
        between them.
        """
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.7, 0).h(0).h(0).cx(0, 1)
        optimized = cancel_adjacent_inverses(circuit)
        assert optimized.count("cx") == 2
        assert _equivalent(circuit, optimized)

    def test_direction_matters_for_cx(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        assert cancel_adjacent_inverses(circuit).count("cx") == 2

    @pytest.mark.parametrize("kind", ["xx", "yy", "zz"])
    def test_swapped_symmetric_controlled_pauli_cancels(self, kind):
        """cxx(0,1)·cxx(1,0) is the identity — the seam the ordering credits.

        Regression test: the ordering stage's seam heuristic counts swapped
        placements of the symmetric Cliffords as cancellations, so the
        optimizer must actually remove them.
        """
        circuit = QuantumCircuit(2)
        circuit.controlled_pauli(kind, 0, 1).controlled_pauli(kind, 1, 0)
        optimized = cancel_adjacent_inverses(circuit)
        assert len(optimized) == 0
        assert _equivalent(circuit, QuantumCircuit(2))

    @pytest.mark.parametrize("name", ["cz", "swap"])
    def test_swapped_symmetric_builtin_cancels(self, name):
        circuit = QuantumCircuit(2)
        getattr(circuit, name)(0, 1)
        getattr(circuit, name)(1, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    @pytest.mark.parametrize("kind", ["xy", "yz", "zx"])
    def test_swapped_asymmetric_controlled_pauli_survives(self, kind):
        """cxy(0,1) != cxy(1,0): asymmetric kinds still compare by order."""
        circuit = QuantumCircuit(2)
        circuit.controlled_pauli(kind, 0, 1).controlled_pauli(kind, 1, 0)
        optimized = cancel_adjacent_inverses(circuit)
        assert len(optimized) == 2
        assert _equivalent(circuit, optimized)

    def test_preserves_unitary_on_random_clifford_circuit(self):
        rng = np.random.default_rng(0)
        circuit = QuantumCircuit(3)
        for _ in range(40):
            choice = rng.integers(0, 4)
            if choice == 0:
                circuit.h(int(rng.integers(3)))
            elif choice == 1:
                circuit.s(int(rng.integers(3)))
            elif choice == 2:
                circuit.sdg(int(rng.integers(3)))
            else:
                a, b = rng.choice(3, 2, replace=False)
                circuit.cx(int(a), int(b))
        assert _equivalent(circuit, cancel_adjacent_inverses(circuit))


class TestRotationMerging:
    def test_adjacent_rz_merge(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.25, 0).rz(0.5, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.75)

    def test_opposite_angles_cancel_entirely(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.4, 0).rz(-0.4, 0)
        assert len(merge_rotations(circuit)) == 0

    def test_rzz_merge(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.1, 0, 1).rzz(0.2, 0, 1)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.3)

    def test_different_axes_do_not_merge(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.1, 0).rx(0.2, 0)
        assert len(merge_rotations(circuit)) == 2

    @pytest.mark.parametrize("name", ["rzz", "rxx", "ryy"])
    def test_swapped_symmetric_rotations_merge(self, name):
        """rzz(a; 0,1)·rzz(b; 1,0) = rzz(a+b; 0,1): symmetric axes merge."""
        circuit = QuantumCircuit(2)
        getattr(circuit, name)(0.3, 0, 1)
        getattr(circuit, name)(0.4, 1, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 1
        assert merged[0].name == name
        assert merged[0].qubits == (0, 1)
        assert merged[0].params[0] == pytest.approx(0.7)
        assert _equivalent(circuit, merged)

    def test_swapped_rzx_does_not_merge(self):
        """rzx is direction-sensitive, so swapped placements must survive."""
        circuit = QuantumCircuit(2)
        circuit.rzx(0.3, 0, 1).rzx(0.4, 1, 0)
        merged = merge_rotations(circuit)
        assert len(merged) == 2
        assert _equivalent(circuit, merged)

    def test_swapped_symmetric_opposite_angles_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.rxx(0.6, 0, 1).rxx(-0.6, 1, 0)
        assert len(merge_rotations(circuit)) == 0

    def test_merge_preserves_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.2, 0).rz(0.3, 0).cx(0, 1).rzz(0.5, 0, 1).rzz(-0.5, 0, 1).rx(0.1, 1)
        assert _equivalent(circuit, merge_rotations(circuit))
