"""Regression tests for the PassManager fixpoint criterion.

The criterion must be component-wise on the (gate count, 2Q count)
signature: keep iterating only while a round strictly drops at least one
count and grows neither.  A lexicographic tuple comparison wrongly treats
a round that trades the expensive count up (fewer gates overall, but more
2Q gates) as progress and keeps iterating on it.
"""

from repro.circuits.circuit import QuantumCircuit
from repro.transforms.pass_manager import CircuitPass, PassManager


def _circuit(num_1q: int, num_2q: int) -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    for _ in range(num_1q):
        circuit.h(0)
    for _ in range(num_2q):
        circuit.cx(0, 1)
    return circuit


class TestComponentWiseFixpoint:
    def test_trading_2q_up_is_not_progress(self):
        # Each round removes two 1Q gates but adds a 2Q gate: the total
        # shrinks (lexicographically "progress") while the expensive count
        # grows.  The manager must stop after one round instead of burning
        # the whole iteration budget.
        rounds = []

        def trade(circuit):
            rounds.append(1)
            return _circuit(
                max(0, len(circuit) - circuit.count_2q() - 2),
                circuit.count_2q() + 1,
            )

        manager = PassManager([CircuitPass("trade", trade)], max_iterations=10)
        manager.run(_circuit(num_1q=8, num_2q=0))
        assert len(rounds) == 1

    def test_trading_gates_up_is_not_progress(self):
        # The mirror trade: one fewer 2Q gate at the price of extra 1Q
        # gates.  No count-profile improvement either way -> one round.
        rounds = []

        def trade(circuit):
            rounds.append(1)
            num_2q = max(0, circuit.count_2q() - 1)
            num_1q = len(circuit) - circuit.count_2q() + 3
            return _circuit(num_1q, num_2q)

        manager = PassManager([CircuitPass("trade", trade)], max_iterations=10)
        manager.run(_circuit(num_1q=0, num_2q=5))
        assert len(rounds) == 1

    def test_strict_drop_in_one_count_keeps_iterating(self):
        # Dropping a 2Q gate per round (1Q count unchanged) is genuine
        # progress; iteration continues to the empty-of-2Q fixpoint.
        def drop_2q(circuit):
            return _circuit(
                len(circuit) - circuit.count_2q(), max(0, circuit.count_2q() - 1)
            )

        manager = PassManager([CircuitPass("drop", drop_2q)], max_iterations=10)
        result = manager.run(_circuit(num_1q=3, num_2q=4))
        assert result.count_2q() == 0
        assert len(result) == 3

    def test_unchanged_signature_stops(self):
        rounds = []

        def identity(circuit):
            rounds.append(1)
            return circuit

        manager = PassManager([CircuitPass("id", identity)], max_iterations=10)
        manager.run(_circuit(num_1q=2, num_2q=2))
        assert len(rounds) == 1
