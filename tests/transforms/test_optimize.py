"""Tests for the packaged optimisation pipelines and pass manager."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.synthesis.pauli_exp import synthesize_terms
from repro.transforms.optimize import optimize_circuit
from repro.transforms.pass_manager import CircuitPass, PassManager


class TestOptimizePipelines:
    def test_level_zero_is_identity(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        assert optimize_circuit(circuit, level=0) is circuit

    def test_levels_reduce_gate_count(self, tiny_program):
        circuit = synthesize_terms(tiny_program)
        o2 = optimize_circuit(circuit, level=2)
        o3 = optimize_circuit(circuit, level=3)
        assert len(o2) <= len(circuit)
        assert o3.count_2q() <= o2.count_2q()

    def test_optimization_preserves_unitary(self, tiny_program):
        circuit = synthesize_terms(tiny_program)
        reference = circuit_unitary(circuit)
        for level in (2, 3):
            optimized = circuit_unitary(optimize_circuit(circuit, level=level))
            overlap = abs(np.trace(reference.conj().T @ optimized)) / reference.shape[0]
            assert overlap == pytest.approx(1.0, abs=1e-9)


class TestPassManager:
    def test_runs_passes_in_order(self):
        trace = []

        def make(name):
            def transform(circuit):
                trace.append(name)
                return circuit
            return CircuitPass(name, transform)

        manager = PassManager([make("a"), make("b")], iterate=False)
        manager.run(QuantumCircuit(1))
        assert trace == ["a", "b"]

    def test_iteration_stops_at_fixpoint(self):
        calls = []

        def drop_one(circuit):
            calls.append(1)
            if len(circuit) == 0:
                return circuit
            return QuantumCircuit(circuit.num_qubits, list(circuit)[:-1])

        circuit = QuantumCircuit(1)
        circuit.h(0).h(0).h(0)
        manager = PassManager([CircuitPass("drop", drop_one)], max_iterations=10)
        result = manager.run(circuit)
        assert len(result) == 0
        assert len(calls) <= 5
