"""Tests for single-qubit fusion and identity dropping."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.unitary import circuit_unitary
from repro.transforms.fusion import drop_identities, fuse_single_qubit_gates


class TestFusion:
    def test_run_of_1q_gates_becomes_one_u3(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).s(0).rz(0.3, 0).h(0)
        fused = fuse_single_qubit_gates(circuit)
        assert len(fused) == 1
        assert fused[0].name == "u3"

    def test_identity_run_is_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0)
        assert len(fuse_single_qubit_gates(circuit)) == 0

    def test_diagonal_run_is_not_dropped(self):
        """Regression test: S·S is a phase gate, not the identity."""
        circuit = QuantumCircuit(1)
        circuit.s(0).s(0)
        fused = fuse_single_qubit_gates(circuit)
        assert len(fused) == 1

    def test_fusion_preserves_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).sdg(0).cx(0, 1).s(1).rz(0.7, 1).h(1).cx(1, 0).t(0)
        fused = fuse_single_qubit_gates(circuit)
        a, b = circuit_unitary(circuit), circuit_unitary(fused)
        assert abs(np.trace(a.conj().T @ b)) / 4 == pytest.approx(1.0, abs=1e-9)

    def test_two_qubit_gates_flush_pending(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        fused = fuse_single_qubit_gates(circuit)
        assert [g.name for g in fused] == ["u3", "cx"]

    def test_drop_identities(self):
        circuit = QuantumCircuit(1)
        circuit.i(0).x(0).i(0)
        assert [g.name for g in drop_identities(circuit)] == ["x"]
