"""Cross-compiler differential verification over generated workloads.

For every registered compiler and a seeded sample of small (<= 8 qubit)
instances of every registered workload family, this suite proves that the
compilers implement the same circuit *semantics* — not just that their
metrics look plausible:

* each compiled circuit's dense unitary equals the Trotter product of the
  term order the compiler says it implemented, up to global phase;
* the implemented terms are exactly a permutation of the input program
  (same canonical symplectic fingerprint), so no compiler drops, duplicates,
  or rescales a rotation;
* the order-sensitive naive baseline implements the *given* order verbatim
  (exact-sequence fingerprint, and unitary equality against the input
  order);
* on fully-commuting workloads (MaxCut cost layers), where term order is
  irrelevant, all compilers' circuits are mutually unitarily equivalent up
  to global phase.

Both the compiler line-up and the workload sample are discovered from the
global registries, so registering a new compiler or family automatically
extends the suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.paulis.fingerprint import program_fingerprint
from repro.pipeline.options import CompileOptions
from repro.pipeline.registry import (
    build_compiler,
    compiler_max_weight,
    compiler_names,
    is_order_sensitive,
)
from repro.simulation.evolution import terms_unitary
from repro.simulation.unitary import circuit_unitary
from repro.workloads.registry import list_workloads

#: Pinned seeds of the differential sample; two per family keeps the suite
#: fast while still exercising seed-dependent structure (couplings, graphs,
#: supports, amplitudes).
SEEDS = (3, 17)

COMPILERS = compiler_names()
FAMILIES = [family.name for family in list_workloads()]

_CASES = [
    pytest.param(family, seed, compiler, id=f"{family}-s{seed}-{compiler}")
    for family in FAMILIES
    for seed in SEEDS
    for compiler in COMPILERS
]


@pytest.fixture(scope="module")
def small_instances():
    """family name -> {seed -> Workload}, all small enough for dense checks."""
    instances = {}
    for family in list_workloads():
        instances[family.name] = {
            seed: family.build(**{**family.small_params, "seed": seed})
            for seed in SEEDS
        }
    return instances


def _phase_overlap(reference: np.ndarray, actual: np.ndarray) -> float:
    """|Tr(U† V)| / N: 1.0 iff U = e^{i phi} V."""
    return abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]


def _supports_program(compiler_name: str, workload) -> bool:
    """Whether the compiler's declared weight contract admits the program
    (2QAN declares ``max_pauli_weight = 2``)."""
    limit = compiler_max_weight(compiler_name)
    return limit is None or workload.max_weight() <= limit


pytestmark = pytest.mark.fuzz


class TestDifferentialEquivalence:
    def test_sample_is_small_enough_for_dense_verification(self, small_instances):
        for per_seed in small_instances.values():
            for workload in per_seed.values():
                assert workload.num_qubits <= 8

    @pytest.mark.parametrize("family,seed,compiler_name", _CASES)
    def test_compiled_circuit_implements_its_trotter_product(
        self, family, seed, compiler_name, small_instances
    ):
        workload = small_instances[family][seed]
        if not _supports_program(compiler_name, workload):
            pytest.skip(f"{compiler_name} contract excludes {family} (weight > 2)")
        compiler = build_compiler(compiler_name, CompileOptions())
        result = compiler.compile(workload.to_terms())

        reference = terms_unitary(list(result.implemented_terms))
        actual = circuit_unitary(result.circuit)
        assert _phase_overlap(reference, actual) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("family,seed,compiler_name", _CASES)
    def test_implemented_terms_are_a_permutation_of_the_input(
        self, family, seed, compiler_name, small_instances
    ):
        workload = small_instances[family][seed]
        if not _supports_program(compiler_name, workload):
            pytest.skip(f"{compiler_name} contract excludes {family} (weight > 2)")
        compiler = build_compiler(compiler_name, CompileOptions())
        result = compiler.compile(workload.to_terms())

        assert program_fingerprint(
            list(result.implemented_terms), canonical=True
        ) == program_fingerprint(list(workload.terms), canonical=True)

        if is_order_sensitive(compiler_name):
            # The naive baseline's contract is the given Trotter order,
            # verbatim: exact-sequence fingerprints must also match, and the
            # circuit must equal the *input* order's product.
            assert program_fingerprint(
                list(result.implemented_terms), canonical=False
            ) == program_fingerprint(list(workload.terms), canonical=False)
            reference = terms_unitary(workload.to_terms())
            actual = circuit_unitary(result.circuit)
            assert _phase_overlap(reference, actual) == pytest.approx(1.0, abs=1e-9)


class TestCommutingCrossCompiler:
    """On commuting programs every compiler must produce the *same* unitary."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_compilers_agree_on_maxcut(self, seed, small_instances):
        workload = small_instances["maxcut"][seed]
        assert workload.max_weight() <= 2  # 2QAN participates too
        unitaries = {}
        for compiler_name in COMPILERS:
            compiler = build_compiler(compiler_name, CompileOptions())
            result = compiler.compile(workload.to_terms())
            unitaries[compiler_name] = circuit_unitary(result.circuit)
        baseline_name = COMPILERS[0]
        baseline = unitaries[baseline_name]
        for compiler_name, unitary in unitaries.items():
            overlap = _phase_overlap(baseline, unitary)
            assert overlap == pytest.approx(1.0, abs=1e-9), (
                f"{compiler_name} disagrees with {baseline_name} on "
                f"{workload.spec}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trotter_product_is_order_free_on_maxcut(self, seed, small_instances):
        """Sanity anchor: the commuting claim itself, term-order shuffled."""
        workload = small_instances["maxcut"][seed]
        rng = np.random.default_rng(seed)
        shuffled = workload.to_terms()
        rng.shuffle(shuffled)
        assert _phase_overlap(
            terms_unitary(workload.to_terms()), terms_unitary(shuffled)
        ) == pytest.approx(1.0, abs=1e-12)


class TestOrderingEngineBitIdentity:
    """The fast ordering engine is an optimization, not a heuristic change:
    on every family/seed of the differential sample, PHOENIX must emit the
    exact same gate sequence whichever ordering engine is selected."""

    @pytest.mark.parametrize(
        "family,seed",
        [
            pytest.param(family, seed, id=f"{family}-s{seed}")
            for family in FAMILIES
            for seed in SEEDS
        ],
    )
    def test_fast_and_reference_orderings_compile_identically(
        self, family, seed, small_instances
    ):
        workload = small_instances[family][seed]
        results = {}
        for engine in ("fast", "reference"):
            compiler = build_compiler("phoenix", CompileOptions(ordering_engine=engine))
            results[engine] = compiler.compile(workload.to_terms())
        fast, reference = results["fast"], results["reference"]
        assert [(g.name, g.qubits, g.params) for g in fast.circuit] == [
            (g.name, g.qubits, g.params) for g in reference.circuit
        ]
        assert list(fast.implemented_terms) == list(reference.implemented_terms)
