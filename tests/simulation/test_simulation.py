"""Tests for statevector/unitary simulation, evolution and fidelity."""

import numpy as np
import pytest
import scipy.linalg

from repro.circuits.circuit import QuantumCircuit
from repro.paulis.hamiltonian import Hamiltonian
from repro.simulation.evolution import (
    exact_evolution_unitary,
    pauli_exponential_unitary,
    terms_unitary,
    trotter_terms,
)
from repro.simulation.fidelity import process_fidelity, states_overlap, unitary_infidelity
from repro.simulation.statevector import apply_circuit, zero_state
from repro.simulation.unitary import circuit_unitary


class TestStatevector:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1.0 and np.count_nonzero(state) == 1

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = apply_circuit(circuit)
        expected = np.zeros(4, complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_qubit_zero_is_most_significant(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = apply_circuit(circuit)
        assert state[2] == pytest.approx(1.0)  # |10> has index 2

    def test_wrong_state_size_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            apply_circuit(circuit, np.zeros(3))


class TestUnitary:
    def test_matches_statevector_columns(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.3, 1)
        unitary = circuit_unitary(circuit)
        assert np.allclose(unitary[:, 0], apply_circuit(circuit))
        assert np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-9)

    def test_refuses_large_register(self):
        with pytest.raises(ValueError):
            circuit_unitary(QuantumCircuit(15))


class TestEvolution:
    def test_single_term_exponential(self):
        from repro.paulis.pauli import PauliTerm

        term = PauliTerm.from_label("XY", 0.3)
        expected = scipy.linalg.expm(-0.3j * term.string.to_matrix())
        assert np.allclose(pauli_exponential_unitary(term), expected)

    def test_trotter_first_order_converges(self):
        ham = Hamiltonian.from_labels([("XI", 0.4), ("ZZ", 0.7), ("IY", -0.2)])
        exact = exact_evolution_unitary(ham, 1.0)
        coarse = terms_unitary(trotter_terms(ham, 1.0, steps=1))
        fine = terms_unitary(trotter_terms(ham, 1.0, steps=20))
        assert unitary_infidelity(exact, fine) < unitary_infidelity(exact, coarse)
        assert unitary_infidelity(exact, fine) < 1e-3

    def test_trotter_second_order_beats_first(self):
        ham = Hamiltonian.from_labels([("XX", 0.5), ("ZI", 0.3), ("YZ", -0.4)])
        exact = exact_evolution_unitary(ham, 1.0)
        first = terms_unitary(trotter_terms(ham, 1.0, steps=4, order=1))
        second = terms_unitary(trotter_terms(ham, 1.0, steps=4, order=2))
        assert unitary_infidelity(exact, second) < unitary_infidelity(exact, first)

    def test_invalid_arguments(self):
        ham = Hamiltonian.from_labels([("X", 1.0)])
        with pytest.raises(ValueError):
            trotter_terms(ham, 1.0, steps=0)
        with pytest.raises(ValueError):
            trotter_terms(ham, 1.0, order=3)


class TestFidelity:
    def test_identical_unitaries_have_zero_infidelity(self):
        unitary = circuit_unitary(QuantumCircuit(2, []))
        assert unitary_infidelity(unitary, unitary) == 0.0
        assert process_fidelity(unitary, unitary) == pytest.approx(1.0)

    def test_global_phase_is_ignored(self):
        unitary = np.eye(4, dtype=complex)
        assert unitary_infidelity(unitary, 1j * unitary) == pytest.approx(0.0)

    def test_orthogonal_states(self):
        a = np.array([1, 0], complex)
        b = np.array([0, 1], complex)
        assert states_overlap(a, b) == 0.0
        assert states_overlap(a, a) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unitary_infidelity(np.eye(2), np.eye(4))
