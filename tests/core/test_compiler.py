"""Tests for the PHOENIX compiler facade."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCompiler
from repro.core.compiler import PhoenixCompiler
from repro.hardware.topology import Topology
from repro.paulis.hamiltonian import Hamiltonian
from repro.simulation.evolution import terms_unitary
from repro.simulation.unitary import circuit_unitary


class TestPhoenixLogical:
    def test_reduces_2q_count_vs_naive(self, small_program):
        naive = NaiveCompiler().compile(small_program)
        phoenix = PhoenixCompiler().compile(small_program)
        assert phoenix.metrics.cx_count < naive.metrics.cx_count
        assert phoenix.metrics.depth_2q < naive.metrics.depth_2q

    def test_unitary_equivalence(self, small_program):
        result = PhoenixCompiler().compile(small_program)
        reference = terms_unitary(result.implemented_terms)
        actual = circuit_unitary(result.circuit)
        overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_implemented_terms_are_a_permutation_of_input(self, small_program):
        result = PhoenixCompiler().compile(small_program)
        assert len(result.implemented_terms) == len(small_program)
        original = sorted((t.to_label(), round(t.coefficient, 12)) for t in small_program)
        implemented = sorted(
            (t.to_label(), round(t.coefficient, 12)) for t in result.implemented_terms
        )
        assert original == implemented

    def test_accepts_hamiltonian_input(self):
        ham = Hamiltonian.from_labels([("XXI", 0.4), ("ZZI", 0.3), ("IYY", -0.2)])
        result = PhoenixCompiler().compile(ham)
        assert result.metrics.cx_count >= 0

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            PhoenixCompiler().compile([])

    def test_invalid_isa_rejected(self):
        with pytest.raises(ValueError):
            PhoenixCompiler(isa="xy")

    def test_cnot_isa_has_only_cx_two_qubit_gates(self, small_program):
        result = PhoenixCompiler(isa="cnot").compile(small_program)
        assert {g.name for g in result.circuit if g.is_two_qubit()} <= {"cx"}


class TestPhoenixSu4:
    def test_su4_isa_produces_su4_gates(self, small_program):
        result = PhoenixCompiler(isa="su4").compile(small_program)
        two_qubit_names = {g.name for g in result.circuit if g.is_two_qubit()}
        assert two_qubit_names <= {"su4"}
        cnot = PhoenixCompiler(isa="cnot").compile(small_program)
        assert result.metrics.two_qubit_count <= cnot.metrics.cx_count

    def test_su4_unitary_equivalence(self, small_program):
        result = PhoenixCompiler(isa="su4").compile(small_program)
        reference = terms_unitary(result.implemented_terms)
        actual = circuit_unitary(result.circuit)
        overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)


class TestPhoenixHardwareAware:
    def test_routed_circuit_respects_topology(self, qaoa_line_program):
        topology = Topology.ring(8)
        result = PhoenixCompiler(topology=topology).compile(qaoa_line_program)
        assert result.routed is not None
        for gate in result.circuit:
            if gate.is_two_qubit():
                assert topology.are_connected(*gate.qubits)

    def test_routing_overhead_reported(self, qaoa_line_program):
        topology = Topology.ring(8)
        result = PhoenixCompiler(topology=topology).compile(qaoa_line_program)
        assert result.routing_overhead is not None
        assert result.routing_overhead >= 1.0 or result.metrics.swap_count == 0

    def test_all_to_all_topology_is_logical_compilation(self, small_program):
        result = PhoenixCompiler(topology=Topology.all_to_all(5)).compile(small_program)
        assert result.routed is None
