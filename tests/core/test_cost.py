"""Tests for the Eq. (6) BSF cost function."""

import numpy as np
import pytest

from repro.core.cost import bsf_cost, bsf_cost_reference, cost_terms, pairs_of
from repro.paulis.bsf import BSF


class TestBsfCost:
    def test_empty_bsf_costs_nothing(self):
        bsf = BSF.from_labels([("XII", 1.0)])
        bsf.pop_local_paulis()
        assert bsf_cost(bsf) == 0.0

    def test_single_local_row(self):
        bsf = BSF.from_labels([("XII", 1.0)])
        # One local row: w_tot = 1, n_nl = 0, no pairs.
        assert bsf_cost(bsf) == pytest.approx(1.0 * 0.0)

    def test_hand_computed_value(self):
        # Rows: XX and XZ on 2 qubits.
        bsf = BSF.from_labels([("XX", 1.0), ("XZ", 1.0)])
        # w_tot = 2, n_nl = 2 -> bias 8.
        # support OR = 2; x OR = 2, z OR = 1 -> 0.5 * 3 = 1.5.
        assert bsf_cost(bsf) == pytest.approx(8 + 2 + 1.5)

    def test_cost_decreases_for_paper_example(self):
        bsf = BSF.from_labels([("ZYY", 1.0), ("ZZY", 1.0), ("XYY", 1.0), ("XZY", 1.0)])
        before = bsf_cost(bsf)
        bsf.apply_clifford2q("xy", 1, 2)
        assert bsf_cost(bsf) < before

    def test_cost_terms_sum_to_cost(self):
        bsf = BSF.from_labels([("XYZ", 1.0), ("ZZY", 1.0), ("XIX", 1.0)])
        parts = cost_terms(bsf)
        assert sum(parts.values()) == pytest.approx(bsf_cost(bsf))

    def test_closed_form_equals_pairwise_reference(self):
        rng = np.random.default_rng(123)
        for _ in range(100):
            rows = int(rng.integers(1, 16))
            qubits = int(rng.integers(1, 12))
            bsf = BSF(rng.random((rows, qubits)) < 0.4, rng.random((rows, qubits)) < 0.4)
            assert bsf_cost(bsf) == bsf_cost_reference(bsf)
            assert sum(cost_terms(bsf).values()) == bsf_cost_reference(bsf)

    def test_pairs_of_handles_small_arguments(self):
        assert pairs_of(np.array([0, 1, 2, 5])).tolist() == [0, 0, 1, 10]
