"""Tests for the Tetris-like IR group ordering."""

import numpy as np
import pytest

from repro.core.grouping import group_terms
from repro.core.ordering import (
    _all_pairs_bfs_distances,
    assembling_cost,
    build_block,
    order_groups,
)
from repro.core.simplify import simplify_group
from repro.paulis.pauli import PauliTerm


class TestAllPairsBfs:
    def test_matches_networkx_on_random_graphs(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(17)
        for _ in range(60):
            n = int(rng.integers(2, 12))
            edges = [
                tuple(sorted(rng.choice(n, 2, replace=False).tolist()))
                for _ in range(int(rng.integers(0, 14)))
            ]
            mine = _all_pairs_bfs_distances(edges, n)
            graph = nx.Graph()
            graph.add_edges_from(edges)
            reference = np.zeros((n, n))
            for a, targets in dict(nx.all_pairs_shortest_path_length(graph)).items():
                for b, d in targets.items():
                    reference[a, b] = d
            assert np.array_equal(mine, reference)

    def test_empty_edge_list(self):
        assert not _all_pairs_bfs_distances([], 5).any()

    def test_disconnected_pairs_stay_zero(self):
        distances = _all_pairs_bfs_distances([(0, 1), (2, 3)], 4)
        assert distances[0, 1] == 1
        assert distances[0, 2] == 0
        assert distances[1, 3] == 0


def _simplified(labels, coeff=0.1):
    terms = [PauliTerm.from_label(lbl, coeff) for lbl in labels]
    return [simplify_group(g) for g in group_terms(terms)]


class TestAssemblingCost:
    def test_same_support_stacking_is_cheaper_than_disjoint(self):
        # Block A acts on qubits (0,1); candidates act on (0,1) vs (2,3).
        # Stacking a block onto one with the same support leaves no idle
        # slots at the seam (and exposes cancellations), while a disjoint
        # block leaves both supports idle for the other block's full depth,
        # so the endian-vector cost must prefer the same-support candidate.
        groups = _simplified(["XYII", "IIXZ", "ZZII"])
        blocks = {g.group.qubits: build_block(g, 4) for g in groups}
        prev = blocks[(0, 1)]
        same_support = blocks.get((0, 1))
        other_support = blocks[(2, 3)]
        cost_other = assembling_cost(prev, other_support)
        cost_same = assembling_cost(prev, same_support)
        assert cost_same < cost_other

    def test_seam_cancellation_reduces_cost(self):
        # Two identical multi-weight groups expose the same boundary
        # Cliffords, which should make stacking them cheaper than stacking
        # two unrelated groups of the same size.
        labels = ["ZYYX", "ZZYY", "XYYZ", "XZYX"]
        groups_same = _simplified(labels + labels)
        block_a = build_block(groups_same[0], 4)
        cost_self = assembling_cost(block_a, build_block(groups_same[0], 4))
        assert isinstance(cost_self, float)

    def test_routing_aware_divides_by_similarity(self):
        groups = _simplified(["XYII", "YZII"])
        block = build_block(groups[0], 4)
        plain = assembling_cost(block, block, routing_aware=False)
        aware = assembling_cost(block, block, routing_aware=True)
        # Identical blocks have maximal similarity, so the routing-aware cost
        # is the plain cost divided by a value >= 1 when supports overlap.
        assert aware <= plain or plain <= 0


class TestOrderGroups:
    def test_empty_input(self):
        assert order_groups([], 4) == []

    def test_output_is_permutation_of_input(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5, lookahead=2)
        assert len(ordered) == len(simplified)
        assert {id(g) for g in ordered} == {id(g) for g in simplified}

    def test_widest_group_first(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5)
        assert ordered[0].group.weight == max(g.group.weight for g in simplified)

    def test_lookahead_one_keeps_prearranged_order(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5, lookahead=1)
        widths = [g.group.weight for g in ordered]
        assert widths == sorted(widths, reverse=True)


def _workload_simplified(spec):
    from repro.workloads.registry import workload_from_spec

    terms = workload_from_spec(spec).to_terms()
    num_qubits = terms[0].num_qubits
    return [simplify_group(g) for g in group_terms(terms)], num_qubits


class TestFastEngine:
    def test_invalid_engine_rejected(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        with pytest.raises(ValueError, match="unknown ordering engine"):
            order_groups(simplified, 5, engine="magic")

    def test_symbolic_structure_matches_emitted_circuit(self):
        """The fast engine's symbolic 2Q view must equal the real circuit's.

        For every group of a real workload, the symbolic pair sequence must
        list exactly the emitted circuit's 2Q gates, and the symbolic
        boundary must equal :func:`_boundary_cliffords` on both ends.
        """
        from repro.core.emission import group_to_circuit
        from repro.core.ordering import (
            _boundary_cliffords,
            _symbolic_boundary,
            _symbolic_two_qubit_pairs,
        )

        simplified, num_qubits = _workload_simplified("xxz:n=12,lattice=chain")
        assert simplified
        for group in simplified:
            circuit = group_to_circuit(group, num_qubits)
            pairs, clifford_gates, has_final2 = _symbolic_two_qubit_pairs(group)
            emitted_pairs = [g.qubits for g in circuit if g.is_two_qubit()]
            assert [tuple(p) for p in pairs] == emitted_pairs
            boundary = _symbolic_boundary(clifford_gates, has_final2)
            assert boundary == _boundary_cliffords(circuit, from_left=True)
            assert boundary == _boundary_cliffords(circuit, from_left=False)

    @pytest.mark.parametrize("routing_aware", [False, True])
    @pytest.mark.parametrize(
        "spec", ["xxz:n=14,lattice=chain", "maxcut:n=12,graph=reg3,layers=2"]
    )
    def test_fast_matches_reference_bit_for_bit(self, spec, routing_aware):
        simplified, num_qubits = _workload_simplified(spec)
        reference = order_groups(
            simplified, num_qubits, routing_aware=routing_aware, engine="reference"
        )
        fast = order_groups(
            simplified, num_qubits, routing_aware=routing_aware, engine="fast"
        )
        assert [id(g) for g in fast] == [id(g) for g in reference]

    @pytest.mark.parametrize("lookahead", [1, 3, 25])
    def test_fast_matches_reference_across_lookaheads(self, lookahead):
        simplified, num_qubits = _workload_simplified("xxz:n=14,lattice=chain")
        reference = order_groups(
            simplified, num_qubits, lookahead=lookahead, engine="reference"
        )
        fast = order_groups(simplified, num_qubits, lookahead=lookahead, engine="fast")
        assert [id(g) for g in fast] == [id(g) for g in reference]

    def test_auto_uses_fast(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        auto = order_groups(simplified, 5, engine="auto")
        fast = order_groups(simplified, 5, engine="fast")
        assert [id(g) for g in auto] == [id(g) for g in fast]


class TestSeamCreditsAreRealized:
    def test_credited_seam_cliffords_cancel_under_optimization(self):
        """Every seam cancellation the heuristic credits must be realised.

        The credit counts boundary-Clifford pairs (1Q locals skipped), so
        the contract is: optimizing the two adjacent boundary runs removes
        at least two 2Q gates per credited pair.  This is the agreement
        between the ordering's scoring and the optimizer that the
        swapped-qubit symmetric-gate fix restores.
        """
        from repro.circuits.circuit import QuantumCircuit
        from repro.core.ordering import _seam_cancellations
        from repro.circuits.gates import Gate
        from repro.transforms.optimize import optimize_circuit

        simplified, num_qubits = _workload_simplified(
            "kpauli:n=10,num_terms=60,k=3,seed=5"
        )
        ordered = order_groups(simplified, num_qubits)
        blocks = [build_block(g, num_qubits) for g in ordered]
        credited_pairs = 0
        for prev, nxt in zip(blocks, blocks[1:]):
            cancellations = _seam_cancellations(prev, nxt)
            if not cancellations:
                continue
            credited_pairs += 1
            seam = QuantumCircuit(num_qubits)
            for name, qubits in reversed(prev.trailing_cliffords):
                seam.append(Gate(name, qubits))
            for name, qubits in nxt.leading_cliffords:
                seam.append(Gate(name, qubits))
            before = seam.count_2q()
            after = optimize_circuit(seam, level=2).count_2q()
            assert before - after >= 2 * cancellations, (
                f"seam credited {cancellations} cancellations but optimization "
                f"only removed {before - after} of {before} 2Q gates"
            )
        assert credited_pairs > 0, "workload produced no credited seams"
