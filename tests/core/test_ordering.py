"""Tests for the Tetris-like IR group ordering."""

import numpy as np
import pytest

from repro.core.grouping import group_terms
from repro.core.ordering import (
    _all_pairs_bfs_distances,
    assembling_cost,
    build_block,
    order_groups,
)
from repro.core.simplify import simplify_group
from repro.paulis.pauli import PauliTerm


class TestAllPairsBfs:
    def test_matches_networkx_on_random_graphs(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(17)
        for _ in range(60):
            n = int(rng.integers(2, 12))
            edges = [
                tuple(sorted(rng.choice(n, 2, replace=False).tolist()))
                for _ in range(int(rng.integers(0, 14)))
            ]
            mine = _all_pairs_bfs_distances(edges, n)
            graph = nx.Graph()
            graph.add_edges_from(edges)
            reference = np.zeros((n, n))
            for a, targets in dict(nx.all_pairs_shortest_path_length(graph)).items():
                for b, d in targets.items():
                    reference[a, b] = d
            assert np.array_equal(mine, reference)

    def test_empty_edge_list(self):
        assert not _all_pairs_bfs_distances([], 5).any()

    def test_disconnected_pairs_stay_zero(self):
        distances = _all_pairs_bfs_distances([(0, 1), (2, 3)], 4)
        assert distances[0, 1] == 1
        assert distances[0, 2] == 0
        assert distances[1, 3] == 0


def _simplified(labels, coeff=0.1):
    terms = [PauliTerm.from_label(lbl, coeff) for lbl in labels]
    return [simplify_group(g) for g in group_terms(terms)]


class TestAssemblingCost:
    def test_same_support_stacking_is_cheaper_than_disjoint(self):
        # Block A acts on qubits (0,1); candidates act on (0,1) vs (2,3).
        # Stacking a block onto one with the same support leaves no idle
        # slots at the seam (and exposes cancellations), while a disjoint
        # block leaves both supports idle for the other block's full depth,
        # so the endian-vector cost must prefer the same-support candidate.
        groups = _simplified(["XYII", "IIXZ", "ZZII"])
        blocks = {g.group.qubits: build_block(g, 4) for g in groups}
        prev = blocks[(0, 1)]
        same_support = blocks.get((0, 1))
        other_support = blocks[(2, 3)]
        cost_other = assembling_cost(prev, other_support)
        cost_same = assembling_cost(prev, same_support)
        assert cost_same < cost_other

    def test_seam_cancellation_reduces_cost(self):
        # Two identical multi-weight groups expose the same boundary
        # Cliffords, which should make stacking them cheaper than stacking
        # two unrelated groups of the same size.
        labels = ["ZYYX", "ZZYY", "XYYZ", "XZYX"]
        groups_same = _simplified(labels + labels)
        block_a = build_block(groups_same[0], 4)
        cost_self = assembling_cost(block_a, build_block(groups_same[0], 4))
        assert isinstance(cost_self, float)

    def test_routing_aware_divides_by_similarity(self):
        groups = _simplified(["XYII", "YZII"])
        block = build_block(groups[0], 4)
        plain = assembling_cost(block, block, routing_aware=False)
        aware = assembling_cost(block, block, routing_aware=True)
        # Identical blocks have maximal similarity, so the routing-aware cost
        # is the plain cost divided by a value >= 1 when supports overlap.
        assert aware <= plain or plain <= 0


class TestOrderGroups:
    def test_empty_input(self):
        assert order_groups([], 4) == []

    def test_output_is_permutation_of_input(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5, lookahead=2)
        assert len(ordered) == len(simplified)
        assert {id(g) for g in ordered} == {id(g) for g in simplified}

    def test_widest_group_first(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5)
        assert ordered[0].group.weight == max(g.group.weight for g in simplified)

    def test_lookahead_one_keeps_prearranged_order(self, small_program):
        simplified = [simplify_group(g) for g in group_terms(small_program)]
        ordered = order_groups(simplified, 5, lookahead=1)
        widths = [g.group.weight for g in ordered]
        assert widths == sorted(widths, reverse=True)
