"""Tests for IR grouping."""

import pytest

from repro.core.grouping import group_terms, grouping_statistics
from repro.paulis.pauli import PauliTerm


class TestGrouping:
    def test_groups_by_support(self, small_program):
        groups = group_terms(small_program)
        assert len(groups) == 3
        assert [g.num_terms for g in groups] == [6, 6, 3]
        assert groups[0].qubits == (0, 1, 2, 3)

    def test_preserves_first_occurrence_order(self):
        terms = [
            PauliTerm.from_label("XXI", 0.1),
            PauliTerm.from_label("IZZ", 0.2),
            PauliTerm.from_label("YYI", 0.3),
        ]
        groups = group_terms(terms)
        assert [g.qubits for g in groups] == [(0, 1), (1, 2)]
        assert groups[0].num_terms == 2

    def test_identity_terms_skipped(self):
        terms = [PauliTerm.from_label("III", 0.5), PauliTerm.from_label("XII", 0.1)]
        groups = group_terms(terms)
        assert len(groups) == 1

    def test_identity_terms_rejected_when_not_skipped(self):
        with pytest.raises(ValueError):
            group_terms([PauliTerm.from_label("II", 1.0)], skip_identities=False)

    def test_add_wrong_support_rejected(self, small_program):
        groups = group_terms(small_program)
        with pytest.raises(ValueError):
            groups[0].add(PauliTerm.from_label("XIIII", 0.1))

    def test_statistics(self, small_program):
        stats = grouping_statistics(group_terms(small_program))
        assert stats["num_groups"] == 3
        assert stats["max_group_terms"] == 6
        assert stats["max_group_weight"] == 4
        assert grouping_statistics([])["num_groups"] == 0
