"""Equivalence property tests for the fast Clifford2Q search engine.

The fast engine must be an *exact* drop-in for the reference engine: the
incremental candidate scores equal the Eq. (6) cost recomputed from scratch
on a conjugated copy, and ``simplify_group`` picks bit-identical Clifford
sequences and final terms through either engine.
"""

import numpy as np
import pytest

from repro.core.cost import bsf_cost, bsf_cost_reference
from repro.core.grouping import group_terms
from repro.core.simplify import (
    _candidate_cliffords,
    _candidate_pairs,
    fast_candidate_costs,
    simplify_group,
)
from repro.paulis.bsf import BSF
from repro.paulis.pauli import PauliTerm
from tests.conftest import random_term


def _random_bsf(rng, rows, qubits, density=0.35):
    x = rng.random((rows, qubits)) < density
    z = rng.random((rows, qubits)) < density
    return BSF(x, z)


def _clifford_key(clifford):
    return (clifford.kind, clifford.control, clifford.target)


def _term_key(term):
    return (term.string.to_label(), term.coefficient)


class TestIncrementalScores:
    def test_scores_equal_rescoring_conjugated_copy(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            rows = int(rng.integers(1, 24))
            qubits = int(rng.integers(2, 11))
            bsf = _random_bsf(rng, rows, qubits)
            scored = fast_candidate_costs(bsf)
            reference = _candidate_cliffords(_candidate_pairs(bsf))
            assert [_clifford_key(c) for c, _ in scored] == [
                _clifford_key(c) for c in reference
            ]
            for clifford, fast_cost in scored:
                trial = bsf.applied_clifford2q(
                    clifford.kind, clifford.control, clifford.target
                )
                assert fast_cost == bsf_cost_reference(trial)
                assert fast_cost == bsf_cost(trial)

    def test_scores_exact_beyond_64_rows(self):
        # More rows than one uint64 word: exercises the multi-word masks.
        rng = np.random.default_rng(9)
        bsf = _random_bsf(rng, 80, 6, density=0.3)
        for clifford, fast_cost in fast_candidate_costs(bsf):
            trial = bsf.applied_clifford2q(
                clifford.kind, clifford.control, clifford.target
            )
            assert fast_cost == bsf_cost(trial)

    def test_local_rows_crossing_threshold_are_tracked(self):
        # Rows of weight 1 can become non-local and weight-2/3 rows can
        # become local; both move the n_nl^2 bias term.
        bsf = BSF.from_labels(
            [("XII", 1.0), ("ZZI", 1.0), ("YYY", 1.0), ("IXZ", 1.0)]
        )
        for clifford, fast_cost in fast_candidate_costs(bsf):
            trial = bsf.applied_clifford2q(
                clifford.kind, clifford.control, clifford.target
            )
            assert fast_cost == bsf_cost_reference(trial)


class TestEnginesChooseIdentically:
    def _assert_identical(self, group):
        fast = simplify_group(group, engine="fast")
        reference = simplify_group(group, engine="reference")
        assert [_clifford_key(c) for c in fast.cliffords] == [
            _clifford_key(c) for c in reference.cliffords
        ]
        assert [_term_key(t) for t in fast.final_terms] == [
            _term_key(t) for t in reference.final_terms
        ]
        assert fast.final_indices == reference.final_indices
        assert fast.implemented_order == reference.implemented_order
        assert fast.epochs == reference.epochs
        for level_fast, level_ref in zip(fast.levels, reference.levels):
            assert level_fast.local_indices == level_ref.local_indices
            assert [_term_key(t) for t in level_fast.local_terms] == [
                _term_key(t) for t in level_ref.local_terms
            ]

    def test_random_groups_bit_identical(self, rng):
        for support in ([0, 1, 2, 3], [0, 2, 3, 5], [1, 2, 3, 4, 6]):
            for _ in range(4):
                terms = [random_term(rng, support, 7) for _ in range(6)]
                self._assert_identical(group_terms(terms)[0])

    def test_paper_example_bit_identical(self):
        terms = [
            PauliTerm.from_label(lbl, 0.1 * (i + 1))
            for i, lbl in enumerate(["ZYY", "ZZY", "XYY", "XZY"])
        ]
        self._assert_identical(group_terms(terms)[0])

    def test_fallback_epochs_bit_identical(self, rng):
        # Exhausted greedy budget: both engines defer to the same fallback.
        terms = [random_term(rng, [0, 1, 2, 3], 4) for _ in range(5)]
        group = group_terms(terms)[0]
        fast = simplify_group(group, max_epochs=0, engine="fast")
        reference = simplify_group(group, max_epochs=0, engine="reference")
        assert [_clifford_key(c) for c in fast.cliffords] == [
            _clifford_key(c) for c in reference.cliffords
        ]

    def test_auto_uses_reference_for_custom_cost(self, rng):
        # A custom cost function cannot be scored incrementally; the auto
        # engine must route it through the reference scan unchanged.
        terms = [random_term(rng, [0, 1, 2, 3], 4) for _ in range(5)]
        group = group_terms(terms)[0]
        custom = lambda b: float(b.total_weight())  # noqa: E731
        auto = simplify_group(group, cost_function=custom, engine="auto")
        reference = simplify_group(group, cost_function=custom, engine="reference")
        assert [_clifford_key(c) for c in auto.cliffords] == [
            _clifford_key(c) for c in reference.cliffords
        ]

    def test_unknown_engine_rejected(self, rng):
        terms = [random_term(rng, [0, 1, 2], 3) for _ in range(3)]
        group = group_terms(terms)[0]
        with pytest.raises(ValueError):
            simplify_group(group, engine="warp")

    def test_fast_engine_rejects_custom_cost(self, rng):
        # The fast scorer is hard-wired to Eq. (6); silently optimising the
        # wrong objective would be a footgun, so it must refuse.
        terms = [random_term(rng, [0, 1, 2], 3) for _ in range(3)]
        group = group_terms(terms)[0]
        with pytest.raises(ValueError, match="custom cost"):
            simplify_group(
                group, cost_function=lambda b: float(b.total_weight()), engine="fast"
            )


class TestClosedFormCost:
    def test_matches_reference_on_random_tableaux(self):
        rng = np.random.default_rng(8)
        for _ in range(200):
            rows = int(rng.integers(1, 20))
            qubits = int(rng.integers(1, 14))
            bsf = _random_bsf(rng, rows, qubits, density=float(rng.uniform(0.1, 0.7)))
            assert bsf_cost(bsf) == bsf_cost_reference(bsf)
