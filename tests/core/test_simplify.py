"""Tests for the BSF simplification algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.emission import group_to_circuit
from repro.core.grouping import IRGroup, group_terms
from repro.core.simplify import simplify_group
from repro.paulis.pauli import PauliTerm
from repro.simulation.evolution import terms_unitary
from repro.simulation.unitary import circuit_unitary


def _group_from_labels(labels, coeff=0.1):
    terms = [PauliTerm.from_label(lbl, coeff * (i + 1)) for i, lbl in enumerate(labels)]
    groups = group_terms(terms)
    assert len(groups) == 1
    return groups[0]


class TestSimplifyGroup:
    def test_paper_example_needs_one_clifford(self):
        group = _group_from_labels(["ZYY", "ZZY", "XYY", "XZY"])
        simplified = simplify_group(group)
        assert simplified.clifford_count == 1
        assert all(t.weight() <= 2 for t in simplified.final_terms)

    def test_already_simple_group_needs_no_cliffords(self):
        group = _group_from_labels(["XY", "ZZ", "YX"])
        simplified = simplify_group(group)
        assert simplified.clifford_count == 0
        assert simplified.epochs == 0

    def test_final_total_weight_at_most_two(self, rng):
        from tests.conftest import random_term

        terms = [random_term(rng, [0, 2, 3, 5], 6) for _ in range(8)]
        group = group_terms(terms)[0]
        simplified = simplify_group(group)
        support = set()
        for term in simplified.final_terms:
            support.update(term.support())
        assert len(support) <= 2

    def test_implemented_order_is_a_permutation(self, rng):
        from tests.conftest import random_term

        terms = [random_term(rng, [0, 1, 2, 3, 4], 5) for _ in range(6)]
        group = group_terms(terms)[0]
        simplified = simplify_group(group)
        assert sorted(simplified.implemented_order) == list(range(6))

    def test_group_circuit_matches_implemented_terms(self, rng):
        from tests.conftest import random_term

        for support in ([0, 1, 2], [0, 1, 2, 3], [1, 2, 3, 4]):
            terms = [random_term(rng, support, 5) for _ in range(5)]
            group = group_terms(terms)[0]
            simplified = simplify_group(group)
            circuit = group_to_circuit(simplified, 5)
            reference = terms_unitary(simplified.implemented_terms())
            actual = circuit_unitary(circuit)
            overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
            assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_locals_are_peeled(self):
        group_terms_list = [
            PauliTerm.from_label("XIII", 0.2),
            PauliTerm.from_label("XYZX", 0.1),
            PauliTerm.from_label("YZXY", 0.3),
        ]
        # Force them into one group by using the same support is not possible
        # here (different supports), so simplify the big group only.
        groups = group_terms(group_terms_list)
        big = [g for g in groups if g.weight == 4][0]
        simplified = simplify_group(big)
        assert all(t.weight() <= 2 for t in simplified.final_terms)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            simplify_group(IRGroup(qubits=(0, 1)))

    def test_fallback_terminates_with_gradient_free_cost(self, rng):
        """A cost with no gradient stalls the greedy search; the guaranteed
        single-row fallback must still drive the group to weight <= 2 and the
        emitted circuit must stay exact (covers the reversed-generator
        orientations such as C(X,Z))."""
        from tests.conftest import random_term

        terms = [random_term(rng, [0, 1, 2, 3], 4) for _ in range(5)]
        group = group_terms(terms)[0]
        simplified = simplify_group(
            group, max_epochs=0, cost_function=lambda b: float(b.total_weight())
        )
        union = set()
        for term in simplified.final_terms:
            union.update(term.support())
        assert len(union) <= 2
        circuit = group_to_circuit(simplified, 4)
        reference = terms_unitary(simplified.implemented_terms())
        actual = circuit_unitary(circuit)
        overlap = abs(np.trace(reference.conj().T @ actual)) / reference.shape[0]
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_fewer_cliffords_than_naive_cnot_count(self):
        """The headline effect: 2Q count beats per-term CNOT-tree synthesis."""
        labels = ["ZYYX", "ZZYY", "XYYZ", "XZYX", "YZXZ", "YYXX"]
        group = _group_from_labels(labels)
        simplified = simplify_group(group)
        # Native cost: 2 CX per Clifford pair + <=2 per residual rotation.
        native_2q = 2 * simplified.clifford_count + 2 * len(
            [t for t in simplified.final_terms if t.weight() == 2]
        )
        naive_2q = sum(2 * (len(lbl) - 1) for lbl in labels)
        assert native_2q < naive_2q
