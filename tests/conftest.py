"""Shared fixtures: small Pauli programs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.paulis.pauli import PauliString, PauliTerm


def random_term(rng: np.random.Generator, support, num_qubits: int) -> PauliTerm:
    """A random Pauli exponentiation acting exactly on ``support``."""
    paulis = {int(q): rng.choice(["X", "Y", "Z"]) for q in support}
    string = PauliString.from_sparse(num_qubits, paulis)
    return PauliTerm(string, float(rng.normal() * 0.1))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_program(rng) -> list[PauliTerm]:
    """A 5-qubit program with three IR groups (two 4-qubit, one 2-qubit)."""
    terms = []
    for _ in range(6):
        terms.append(random_term(rng, [0, 1, 2, 3], 5))
    for _ in range(6):
        terms.append(random_term(rng, [1, 2, 3, 4], 5))
    for _ in range(3):
        terms.append(random_term(rng, [0, 4], 5))
    return terms


@pytest.fixture
def tiny_program(rng) -> list[PauliTerm]:
    """A 3-qubit program small enough for exhaustive unitary checks."""
    labels = ["XYZ", "ZZY", "YXI", "IZZ", "XXX", "ZIY"]
    return [PauliTerm.from_label(lbl, float(rng.normal() * 0.2)) for lbl in labels]


@pytest.fixture
def qaoa_line_program() -> list[PauliTerm]:
    """ZZ interactions along a 6-qubit line (a 2-local program)."""
    terms = []
    for q in range(5):
        string = PauliString.from_sparse(6, {q: "Z", q + 1: "Z"})
        terms.append(PauliTerm(string, 0.3))
    return terms
